(** Bounded stateless model checking of machine programs.

    Explores the tree of scheduler choices by depth-first search. Because a
    thread program's continuation cannot be cloned, each branch is replayed
    from a fresh machine built by [mk] — standard stateless model checking.
    Replay is incremental: the prefix that reached a node is kept as a
    growable array of (choice index, transition) pairs, so replaying a
    sibling costs one [Machine.apply] per step instead of re-deriving the
    choice universe (the former list-based replay was O(depth^2)).

    The search is bounded by depth, by a total-run budget, and optionally by
    a CHESS-style preemption bound (switching away from a thread whose next
    instruction is still enabled costs one preemption; drain and flush
    transitions are free, since TSO reordering lives in exactly those
    choices and must stay unrestricted).

    With [memo = true] the search additionally keeps a visited-state cache
    keyed by {!Machine.fingerprint}: two interleavings that converge to the
    same machine state have identical subtrees, so the second one is pruned
    (counted in [memo_hits]). Because the fingerprint covers per-thread
    program position, the cache never merges states whose threads observed
    different values — verdicts are unchanged, only redundant work is cut.
    Under a preemption bound the cache only prunes a revisit whose remaining
    budget is covered by an earlier visit, so bounding stays exact.

    With [por = true] the search applies sleep-set partial-order reduction
    over {!Machine.independent} transition footprints: once a branch
    node's child has been fully explored, later siblings refuse to
    schedule that child's transition until a dependent transition fires,
    cutting the commuted copies of explored interleavings (counted in
    [sleep_skips]; DESIGN.md §10 has the soundness argument under the
    CHESS bound and the memo cache — the sleep set is part of the memo
    key, and a child whose subtree saw bound prunes or memo hits never
    enters a sleep set while a preemption bound is active). Verdicts and
    recorded failure prefixes are preserved; [runs] typically drops by
    5–100×.

    With [dpor = true] the search upgrades to {e source dynamic
    partial-order reduction} (Flanagan–Godefroid with source sets), layered
    on the same footprint relation: a branch node initially explores just
    one unit's choices, and further siblings are only explored when an
    actual race observed below — two dependent accesses by different
    threads not ordered by happens-before — demands their reversal via a
    planted backtrack point. Store-buffer awareness comes for free from
    footprints: a buffered store's [Step] touches no shared address, so it
    races with a concurrent load only where its [Drain]/[Flush] does.
    Sleep sets stay composed ([dpor] implies [por]); under a CHESS bound
    or on a memo hit, a node whose child subtree was cut degrades to full
    enumeration, keeping bounded verdicts exact (DESIGN.md §13). Verdicts
    and failure sets match [por]'s; [runs] drops further wherever threads
    touch disjoint data.

    With [memo_store] (a {!Memo_store.t}) the visited-state cache is
    additionally backed by an on-disk store that persists across runs:
    states explored by earlier searches of the same configuration are
    pruned immediately, and novel states (plus the merged failure set) are
    committed back when the search completes. A fully-warm search does no
    re-exploration and still reports the stored failures.

    By default ([snapshots = true]) sibling subtrees are started by
    restoring a {!Machine.snapshot} of the branch node onto a fresh
    instance — O(state) — instead of replaying the whole prefix from the
    root — O(depth) machine transitions. [snapshots = false] keeps the
    replay path as a differential oracle; results are identical either
    way.

    Used by the test suite to verify, over {e all} interleavings of small
    configurations, the safety properties of every queue algorithm: no task
    lost, no task duplicated (idempotent queues excepted), ABORT only when
    the bound permits it. *)

type instance = {
  machine : Machine.t;
  check : unit -> (unit, string) result;
      (** Invoked once the machine is quiescent; inspects host-level cells
          the thread programs filled in. *)
}

type stats = {
  runs : int;  (** complete (quiescent) runs checked *)
  truncated : int;  (** runs cut off by the depth bound *)
  deadlocks : int;
  pruned : int;  (** branches skipped by the preemption bound *)
  memo_hits : int;
      (** subtrees pruned by the visited-state cache (0 unless [memo]) *)
  sleep_skips : int;
      (** transitions refused by sleep-set POR (0 unless [por]) *)
  peak_depth : int;
      (** deepest node reached by the search (the depth frontier) *)
  covered : float;
      (** Knuth-style covered tree-mass estimate in [0, 1]. The root of
          the choice tree carries mass 1; an n-ary branch splits its mass
          evenly among its children; every subtree disposed of without
          further recursion — completed run, deadlock, depth truncation,
          memo hit, sleep skip, bound prune, DPOR never-demanded sibling —
          credits its mass. A search that ran to completion reports exactly
          [1.0]; an interrupted one ([max_runs], {!Stop}) reports the
          fraction of the tree it got through, making
          [runs /. covered] an unbiased-flavoured estimate of the total
          run count and [elapsed *. (1 -. covered) /. covered] an ETA.
          The estimate assumes sibling subtrees have comparable mass
          (the classic Knuth estimator assumption); skewed trees make it
          noisy early and self-correcting as coverage grows. *)
  failures : (int list * string) list;
      (** Failing runs, in sighting order (first-sighted first, at most
          [max_failures]). Each failure is a choice sequence plus the
          verdict message. {b Orientation:} the choice sequence is
          {e root-first} — element 0 is the index taken at the root of the
          search tree, the last element is the choice at the failing leaf —
          which is exactly the order {!replay_choices} consumes. (The
          search accumulates both the per-run prefix and the failure list
          newest-first internally; both are reversed before they reach
          this record, so no caller-side reversal is ever needed.) Prefer
          {!failures_in_replay_order} over pattern-matching this field:
          the accessor's name states the contract. *)
}

val failures_in_replay_order : stats -> (int list * string) list
(** The recorded failures, first-sighted first, each choice sequence
    root-first — the exact orientation {!replay_choices} (and the
    forensics shrinker built on it) consumes. Today this is the identity
    on [stats.failures]; go through the accessor so the contract survives
    representation changes. *)

val memo_hit_rate : stats -> float
(** Fraction of visited nodes pruned by the visited-state cache:
    [memo_hits / (runs + memo_hits)], 0 when nothing was explored. *)

val default_max_depth : int
(** The [max_depth] {!search} uses when none is given (400) — exported so
    memo-store headers built by callers pin the same value. *)

val search :
  ?max_depth:int ->
  ?max_runs:int ->
  ?preemption_bound:int option ->
  ?max_failures:int ->
  ?memo:bool ->
  ?por:bool ->
  ?dpor:bool ->
  ?memo_store:Memo_store.t ->
  ?snapshots:bool ->
  ?on_progress:(stats -> unit) ->
  ?progress_every:int ->
  mk:(unit -> instance) ->
  unit ->
  stats
(** Defaults: [max_depth = 400], [max_runs = 200_000],
    [preemption_bound = None] (unbounded), [max_failures = 5],
    [memo = false], [por = false] (sleep-set partial-order reduction),
    [dpor = false] (source-DPOR; implies [por]), [memo_store = None]
    (persistent visited-state store; implies memoization),
    [snapshots = true] (snapshot-based sibling exploration; [false] uses
    replay-from-root, the differential oracle).

    With [memo_store], the store is committed (novel entries appended,
    failure set merged) only if the search ran to completion — a
    [max_runs]-interrupted search never poisons the store's failure set.
    @raise Failure if that commit fails at the filesystem level.

    [on_progress], if given, receives a snapshot of the running statistics
    every [progress_every] completed runs (default 4096) — the hook for
    live progress reporting. It must not mutate the search. *)

val replay_choices :
  ?max_steps:int -> mk:(unit -> instance) -> int list -> (unit, string) result
(** Re-run one recorded choice sequence (from {!stats.failures}) and return
    its check result; useful to shrink or debug a failure. After the
    recorded choices, any forced suffix is driven greedily (always
    transition 0) to quiescence. [max_steps] (default unbounded) caps that
    suffix: a {e truncated} sequence — as the forensics shrinker's ddmin
    candidates are — can park the machine in a state where the greedy
    driver spins forever (e.g. a thread retrying a CAS on a lock a
    never-scheduled thread holds), and the cap turns that livelock into
    [Invalid_argument] like any other malformed candidate. Recorded
    full-length failure prefixes never hit the cap: their suffix contains
    only forced steps. *)

val next_choices : Machine.t -> Machine.transition list
(** The choice universe the explorer branches over at the machine's current
    state: enabled transitions after the no-op partial-order reduction.
    Recorded choice indices index into this list — use it to replay a
    failure step by step (e.g. with a {!Trace} attached). *)

type unit_id = U_thread of int | U_memory
    (** The unit performing a transition: a thread, or the memory subsystem
        (drains/flushes), which never costs a preemption. *)

val unit_of : Machine.transition -> unit_id

exception Stop
(** Raised by the run-budget callback to abort a search. *)

(**/**)

(** The search core, exposed for {!Explore_par}. The parallel driver must
    explore each subtree {e exactly} as the sequential search would (so
    merged results are byte-identical); sharing the recursion is what
    guarantees that. Not a stable API. *)
module Internal : sig
  type nonrec acc = {
    mutable runs : int;
    mutable truncated : int;
    mutable deadlocks : int;
    mutable pruned : int;
    mutable memo_hits : int;
    mutable sleep_skips : int;
    mutable peak_depth : int;
    mutable covered : float;  (** see {!stats.covered} *)
    mutable failures_rev : (int list * string) list;
    mutable failure_count : int;
  }

  val make_acc : unit -> acc
  val stats_of_acc : acc -> stats

  module Prefix : sig
    type t

    val create : unit -> t
    val copy : t -> t
    val length : t -> int
    val push : t -> int -> Machine.transition -> unit
    val pop : t -> unit
    val to_list : t -> int list
    val replay : mk:(unit -> instance) -> t -> instance
  end

  type memo = { seen : int -> depth_rem:int -> preempt_rem:int -> bool }
      (** Visited-state cache keyed by the structural {!Machine.fingerprint}:
          [seen fp ~depth_rem ~preempt_rem] returns [true] (prune) iff [fp]
          was already explored with at least as much remaining budget,
          recording the visit otherwise. *)

  val memo_create : unit -> memo

  val memo_tbl_check :
    (int, (int * int) list) Hashtbl.t ->
    int ->
    depth_rem:int ->
    preempt_rem:int ->
    bool
  (** The Pareto-dominance check over one table; building block for sharded
      caches. *)

  type pool
  (** Per-depth reusable enabled-set buffers for the in-place DFS. *)

  val pool_create : unit -> pool

  type spool
  (** Per-depth reusable machine-snapshot scratch. *)

  val spool_create : unit -> spool

  type sleep_entry = {
    sl_tr : Machine.transition;
    sl_fp : Machine.footprint;
        (** taken when the transition went to sleep; stays valid while it
            sleeps, because any same-thread transition is dependent and
            would have woken it *)
  }

  val sleep_mem : sleep_entry list -> Machine.transition -> bool
  val sleep_filter : sleep_entry list -> Machine.footprint -> sleep_entry list
  (** Keep only the entries independent of the footprint of the transition
      being executed. *)

  val sleep_hash : sleep_entry list -> int
  (** Order-independent, for the memoization key. *)

  type dpor
  (** Per-search source-DPOR state: vector clocks, per-address access
      records, and the stack of branch nodes with their backtrack sets. *)

  val dpor_create : nthreads:int -> dpor

  type ctx = {
    mk : unit -> instance;
    max_depth : int;
    preemption_bound : int option;
    max_failures : int;
    memo : memo option;
    acc : acc;
    on_run : acc -> unit;
    pool : pool;
    por : bool;
    dpor : dpor option;
    use_snapshots : bool;
    spool : spool;
    mutable mass : float;
        (** subtree mass for the next [extend] call; set it to the task's
            mass before entering a frontier subtree (see {!stats.covered}) *)
  }

  val recording_mk : (unit -> instance) -> unit -> instance
  (** Wrap an instance builder so every instance records responses (the
      precondition of {!Machine.snapshot}). *)

  val extend :
    ctx ->
    instance ->
    Prefix.t ->
    int ->
    unit_id option ->
    int ->
    sleep_entry list ->
    unit

  val fail : ctx -> Prefix.t -> string -> unit

  val preemption_cost :
    last_unit:unit_id option ->
    choices:Machine.transition list ->
    Machine.transition ->
    int

  val sleep_skip : ctx -> Machine.t -> unit
  (** Account one sleeping transition skipped (stats + sink). *)
end
