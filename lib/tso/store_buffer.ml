type model =
  | Abstract
  | Realistic of { coalesce : bool }
  | Pso

type t = {
  capacity : int;
  model : model;
  buf : (Addr.t * int) Queue.t;
  mutable egress : (Addr.t * int) option;
}

let create ~capacity ~model =
  if capacity < 1 then invalid_arg "Store_buffer.create: capacity must be >= 1";
  { capacity; model; buf = Queue.create (); egress = None }

let capacity t = t.capacity
let model t = t.model
let entries t = Queue.length t.buf

let pending t =
  Queue.length t.buf + (match t.egress with None -> 0 | Some _ -> 1)

let is_empty t = pending t = 0
let is_full t = Queue.length t.buf >= t.capacity

let push t a v =
  if is_full t then invalid_arg "Store_buffer.push: buffer full";
  Queue.push (a, v) t.buf

let lookup t a =
  (* Newest matching entry wins; the queue iterates oldest-first, so the last
     match found in the buffer proper is the newest. B holds the oldest
     pending store, so it only matters when the buffer proper has no match. *)
  let found = ref None in
  Queue.iter (fun (a', v) -> if Addr.equal a a' then found := Some v) t.buf;
  match !found with
  | Some _ as r -> r
  | None -> (
      match t.egress with
      | Some (a', v) when Addr.equal a a' -> Some v
      | _ -> None)

type drain_result =
  | Wrote of Addr.t * int
  | Staged of Addr.t * int
  | Coalesced of Addr.t * int

let oldest t = Queue.peek_opt t.buf

let can_drain t =
  match oldest t with
  | None -> false
  | Some (a, _) -> (
      match t.model with
      | Abstract | Pso -> true
      | Realistic { coalesce } -> (
          match t.egress with
          | None -> true
          | Some (a', _) -> coalesce && Addr.equal a a'))

let drain t mem =
  if not (can_drain t) then invalid_arg "Store_buffer.drain: not enabled";
  let a, v = Queue.pop t.buf in
  match t.model with
  | Abstract | Pso ->
      Memory.set mem a v;
      Wrote (a, v)
  | Realistic _ -> (
      match t.egress with
      | None ->
          t.egress <- Some (a, v);
          Staged (a, v)
      | Some (a', _) ->
          assert (Addr.equal a a');
          t.egress <- Some (a, v);
          Coalesced (a, v))

(* PSO: one drain lane per address with pending stores; lanes are address
   indices, so they are stable across replays of a schedule. *)
let drain_lanes t =
  match t.model with
  | Abstract | Realistic _ -> if can_drain t then [ 0 ] else []
  | Pso ->
      Queue.fold (fun acc (a, _) -> Addr.to_index a :: acc) [] t.buf
      |> List.sort_uniq compare

let drain_lane t lane mem =
  match t.model with
  | Abstract | Realistic _ ->
      if lane <> 0 then invalid_arg "Store_buffer.drain_lane: bad lane";
      drain t mem
  | Pso ->
      (* remove the oldest entry whose address is [lane] *)
      if not (List.mem lane (drain_lanes t)) then
        invalid_arg "Store_buffer.drain_lane: lane has no pending store";
      let entries = Queue.fold (fun acc e -> e :: acc) [] t.buf |> List.rev in
      Queue.clear t.buf;
      let removed = ref None in
      List.iter
        (fun ((a, v) as e) ->
          if Option.is_none !removed && Addr.to_index a = lane then
            removed := Some (a, v)
          else Queue.push e t.buf)
        entries;
      let a, v = Option.get !removed in
      Memory.set mem a v;
      Wrote (a, v)

let can_flush_egress t = Option.is_some t.egress

let flush_egress t mem =
  match t.egress with
  | None -> invalid_arg "Store_buffer.flush_egress: B is empty"
  | Some (a, v) ->
      t.egress <- None;
      Memory.set mem a v;
      (a, v)

let egress_entry t = t.egress

let clear t =
  Queue.clear t.buf;
  t.egress <- None

let set_egress t e = t.egress <- e
let buffered t = Queue.fold (fun acc e -> e :: acc) [] t.buf |> List.rev
let iter_entries t f = Queue.iter f t.buf

let to_list t =
  let tail = buffered t in
  match t.egress with None -> tail | Some e -> e :: tail

let pp mem ppf t =
  let pp_entry ppf (a, v) =
    Format.fprintf ppf "%s:=%d" (Memory.name mem a) v
  in
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_entry)
    (to_list t)
