(** Disk-backed visited-state store ([wsrepro-memo/v1]).

    Persists the explorer's memo table across runs: a directory holding a
    header (the configuration the entries are valid for), fingerprint-
    sharded append-only entry files, and the failure set committed by
    completed searches. A warm search over the same configuration prunes
    at every stored state and still reports the stored violations, so
    repeated CI explorations are incremental.

    An entry means "this state was explored with this much remaining depth
    and preemption budget"; pruning is only allowed against an entry with
    at least as much budget (the same Pareto-frontier rule as the in-memory
    memo). Everything else that shapes the reduced tree — machine
    configuration, bounds, [por]/[dpor] — is pinned by the header, and
    {!open_} rejects a store whose header does not match. *)

type t

val schema : string
(** ["wsrepro-memo/v1"]. *)

val open_ :
  path:string ->
  config:string ->
  max_depth:int ->
  preemption_bound:int option ->
  por:bool ->
  dpor:bool ->
  unit ->
  (t, string) result
(** Open (or create in memory — nothing touches disk until {!commit}) the
    store at [path]. [config] is an opaque description of the machine /
    scenario; it must match the stored header byte-for-byte. Errors are
    descriptive: schema mismatch, configuration mismatch, malformed
    entries. *)

val seen : t -> int -> depth_rem:int -> preempt_rem:int -> bool
(** Memo lookup-and-insert, safe from any domain (mutex per shard). [true]
    means the state was already explored with at least this much budget;
    [false] records the visit (buffered in memory until {!commit}). *)

val commit : t -> failures:(int list * string) list -> (unit, string) result
(** Append the buffered novel entries to the shard files, write the header
    and the given failure set. Call from one domain, only after a search
    that ran to completion (a partial search's failure set is not the
    configuration's). *)

val merge_failures :
  t -> max_failures:int -> (int list * string) list -> (int list * string) list
(** Stored failures first (committed sighting order), then novel live ones,
    deduplicated by schedule and capped — so warm reruns report the same
    failure set as the run that populated the store. *)

val stored_failures : t -> (int list * string) list
val loaded_entries : t -> int
val pending_entries : t -> int

val lookups : t -> int
val hits : t -> int

val tbl_check :
  (int, (int * int) list) Hashtbl.t ->
  int ->
  depth_rem:int ->
  preempt_rem:int ->
  bool
(** The Pareto-frontier membership/insert both memo implementations share
    (exposed for the in-memory memo and the benchmark probes). *)
