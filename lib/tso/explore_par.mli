(** Multicore bounded model checking: {!Explore.search} fanned out across
    OCaml 5 [Domain]s.

    The top-level choice frontier is expanded breadth-first (in lexicographic
    order, walking forced steps in place) until it holds roughly [4 * jobs]
    independent subtrees; the subtrees then form a shared work queue that
    domains claim with an atomic cursor — the checker itself work-steals,
    like the queues it checks. Each claimed subtree is explored with the
    {e same} sequential core as {!Explore.search} ([Explore.Internal]), and
    per-domain results are merged back in frontier order, so with the run
    budget not binding the merged statistics and failure traces are
    byte-identical to a sequential search. When the run budget does bind,
    the parallel search may explore slightly more than the sequential one
    before stopping (the budget is shared through an atomic counter); the
    merge reports {e everything} that was explored — counters and recorded
    failures from every subtree, so [runs] may slightly exceed [max_runs].
    (Earlier versions dropped whole per-domain accumulators once the budget
    was reached, losing their statistics and failures.) Merged failures
    keep {!Explore.stats.failures}'s orientation contract: the list is in
    sighting order and every choice sequence is root-first — each subtree's
    frontier prefix is prepended before the merge — so
    {!Explore.failures_in_replay_order} and the forensics shrinker consume
    parallel results unchanged.

    Memoization ([memo = true]) uses a single visited-state cache shared by
    all domains (sharded by fingerprint hash, one mutex per shard), so
    interleavings that converge across subtree boundaries are still pruned.
    Verdicts are unchanged, but [runs]/[memo_hits] become schedule-dependent
    — whichever domain reaches a state first records it — so memoized
    parallel statistics are {e not} byte-identical to the sequential
    memoized search (non-memoized parallel search remains deterministic).

    Sleep-set POR ([por = true]) travels with the frontier: each subtree
    task carries the sleep set it inherited, and frontier expansion applies
    the same skip/filter/insert rules as the sequential reduction. With no
    preemption bound the parallel POR statistics stay byte-identical to the
    sequential POR search. Under a CHESS bound the sequential rule inserts
    a sibling into the sleep set only after seeing its subtree's outcome,
    which frontier expansion cannot know, so expansion inserts nothing at
    its branch nodes: verdicts are identical, but [runs]/[sleep_skips] may
    exceed the sequential POR search's.

    Snapshot-based sibling exploration ([snapshots], default [true]) works
    unchanged inside each domain: every frontier task replays its prefix
    once and the search below it restores siblings from per-depth snapshot
    scratch. *)

type progress = {
  tasks_done : int;  (** frontier subtrees fully explored *)
  tasks_total : int;  (** frontier subtrees in the shared work queue *)
  total_runs : int;  (** completed runs across all domains *)
  domains : int;  (** worker domains in use *)
}

val search :
  ?max_depth:int ->
  ?max_runs:int ->
  ?preemption_bound:int option ->
  ?max_failures:int ->
  ?memo:bool ->
  ?por:bool ->
  ?snapshots:bool ->
  ?jobs:int ->
  ?on_progress:(progress -> unit) ->
  ?progress_every:int ->
  mk:(unit -> Explore.instance) ->
  unit ->
  Explore.stats
(** Same bounds and defaults as {!Explore.search}. [jobs] defaults to
    [Domain.recommended_domain_count ()]; [jobs = 1] falls back to the
    sequential search. [mk] must be safe to call from multiple domains
    (each call builds a fresh, unshared instance — true of every instance
    builder in this repository).

    [on_progress] is invoked only on the domain that called [search] (the
    callback need not be thread-safe), roughly every [progress_every]
    (default 4096) globally completed runs; the snapshot's counters are
    read from shared atomics so they cover all domains' work. *)
