(** Multicore bounded model checking: {!Explore.search} fanned out across
    OCaml 5 [Domain]s over a work-stealing frontier.

    The choice tree is split into a dynamic frontier of subtree tasks,
    scheduled by one of the repository's own Chase–Lev deques per domain
    (the checker work-steals, like the queues it checks): a claimed task
    with split budget left is expanded by one branching level (walking
    forced steps in place) and its children are pushed on the expanding
    domain's deque; idle domains steal round-robin. The root carries
    [ceil(log2 (4 * jobs))] levels of split budget, so the tree fans out
    to at least ~4 subtrees per domain before leaves are explored with the
    {e same} sequential core as {!Explore.search} ([Explore.Internal]).

    Determinism: every outcome is recorded at its position in the task
    tree, and the merge is a lexicographic walk of that tree — independent
    of which domain ran what in which order. With the run budget not
    binding, merged statistics and failure traces are byte-identical to a
    sequential search. When the budget does bind, the parallel search may
    explore slightly more than the sequential one before stopping (the
    budget is shared through an atomic counter); the merge reports
    {e everything} that was explored, so [runs] may slightly exceed
    [max_runs]. Merged failures keep {!Explore.stats.failures}'s
    orientation contract (sighting order, root-first choice sequences).

    Memoization ([memo = true]) uses a single visited-state cache shared by
    all domains (sharded by fingerprint hash, one mutex per shard), so
    interleavings that converge across subtree boundaries are still pruned.
    Verdicts are unchanged, but [runs]/[memo_hits] become schedule-dependent
    — whichever domain reaches a state first records it — so memoized
    parallel statistics are {e not} byte-identical to the sequential
    memoized search (non-memoized parallel search remains deterministic).
    [memo_store] behaves like {!Explore.search}'s: lookups are safe from
    every domain, and the store commits once, after the merge, only if the
    search ran to completion.

    Sleep-set POR ([por = true]) travels with the frontier: each subtree
    task carries the sleep set it inherited, and frontier expansion applies
    the same skip/filter/insert rules as the sequential reduction. With no
    preemption bound the parallel POR statistics stay byte-identical to the
    sequential POR search. Under a CHESS bound the sequential rule inserts
    a sibling into the sleep set only after seeing its subtree's outcome,
    which frontier expansion cannot know, so expansion inserts nothing at
    its branch nodes: verdicts are identical, but [runs]/[sleep_skips] may
    exceed the sequential POR search's.

    Source-DPOR ([dpor = true]) runs inside each subtree task with fresh
    per-task race-tracking state; frontier split nodes enumerate {e all}
    their children (the unreduced sound baseline), which also covers every
    reversal a race between a task's subtree and its prefix could demand.
    Verdicts and failure sets match the sequential [dpor] search; [runs]
    may exceed it (the split nodes give up their share of the reduction).

    Snapshot-based sibling exploration ([snapshots], default [true]) works
    unchanged inside each domain: every frontier task replays its prefix
    once and the search below it restores siblings from per-depth snapshot
    scratch. *)

type progress = {
  tasks_done : int;  (** frontier tasks fully processed (splits + leaves) *)
  tasks_total : int;  (** frontier tasks created so far (grows dynamically) *)
  total_runs : int;  (** completed runs across all domains *)
  domains : int;  (** worker domains in use *)
  covered : float;
      (** live Knuth covered-mass estimate in [0, 1] (see
          {!Explore.stats.covered}); in parallel mode each frontier task
          credits its share only when it retires, so the estimate moves in
          task-sized steps (the split budget guarantees at least ~4 tasks
          per domain) *)
}

type frontier_stats = {
  fr_domains : int;
  fr_tasks : int;  (** tasks processed (splits + leaves) *)
  fr_splits : int;  (** tasks expanded rather than explored *)
  fr_steals : int;  (** successful steals across all domains *)
  fr_steal_attempts : int;  (** steal probes, successful or not *)
  fr_runs_per_domain : int array;  (** completed runs per domain *)
  fr_tasks_per_domain : int array;  (** tasks processed per domain *)
}
(** How the work-stealing frontier distributed the search. For [jobs = 1]
    (or the sequential fallback) this is the trivial single-domain record. *)

val search :
  ?max_depth:int ->
  ?max_runs:int ->
  ?preemption_bound:int option ->
  ?max_failures:int ->
  ?memo:bool ->
  ?por:bool ->
  ?dpor:bool ->
  ?memo_store:Memo_store.t ->
  ?snapshots:bool ->
  ?jobs:int ->
  ?sink:Telemetry.Sink.t ->
  ?on_progress:(progress -> unit) ->
  ?progress_every:int ->
  mk:(unit -> Explore.instance) ->
  unit ->
  Explore.stats
(** Same bounds and defaults as {!Explore.search}. [jobs] defaults to
    [Domain.recommended_domain_count ()]; [jobs = 1] falls back to the
    sequential search. [mk] must be safe to call from multiple domains
    (each call builds a fresh, unshared instance — true of every instance
    builder in this repository). [sink], if given, receives the frontier
    counters ([frontier_tasks]/[frontier_steals]/[frontier_steal_attempts])
    once the search completes.

    [on_progress] is invoked only on the domain that called [search] (the
    callback need not be thread-safe), roughly every [progress_every]
    (default 4096) globally completed runs; the snapshot's counters are
    read from shared atomics so they cover all domains' work. *)

val frontier_to_sink : frontier_stats -> Telemetry.Sink.t -> unit
(** Add the frontier counters ([frontier_tasks], [frontier_steals],
    [frontier_steal_attempts]) into a telemetry sink. *)

val search_with_frontier :
  ?max_depth:int ->
  ?max_runs:int ->
  ?preemption_bound:int option ->
  ?max_failures:int ->
  ?memo:bool ->
  ?por:bool ->
  ?dpor:bool ->
  ?memo_store:Memo_store.t ->
  ?snapshots:bool ->
  ?jobs:int ->
  ?on_progress:(progress -> unit) ->
  ?progress_every:int ->
  mk:(unit -> Explore.instance) ->
  unit ->
  Explore.stats * frontier_stats
(** {!search} plus the frontier distribution record, for callers that
    report work-stealing behaviour ([--metrics], the benchmark suite). *)
