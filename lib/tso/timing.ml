type cost_model = {
  load_cost : int;
  store_cost : int;
  rmw_cost : int;
  fence_cost : int;
  drain_latency : int;
  pause_cost : int;
}

let default_costs =
  {
    load_cost = 1;
    store_cost = 1;
    rmw_cost = 24;
    fence_cost = 24;
    drain_latency = 16;
    pause_cost = 4;
  }

type thread_stats = {
  finish_time : int;
  instructions : int;
  loads : int;
  stores : int;
  rmws : int;
  fences : int;
  fence_stall : int;
  work_cycles : int;
}

type report = {
  makespan : int;
  outcome : Sched.outcome;
  steps : int;
  threads : thread_stats array;
}

type core = {
  mutable clock : int;
  mutable drain_free : int;  (* when the drain engine can start its next write *)
  mutable buffer_emptied_at : int;  (* time of the drain that last emptied the buffer *)
  issue_times : int Queue.t;  (* completion times of buffered stores, oldest first *)
  store_ids : int Queue.t;  (* trace ids of buffered stores, parallel to issue_times *)
  mutable store_was_blocked : bool;  (* pending store has waited on a full buffer *)
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
  mutable rmws : int;
  mutable fences : int;
  mutable fence_stall : int;
  mutable work_cycles : int;
}

(* Simulated "now", threaded through the run instead of a module-global ref:
   each run owns (or is given) its clock, so timed runs in different domains
   cannot corrupt each other's notion of time. *)
type clock = { mutable now : int }

let clock () = { now = 0 }
let now c = c.now

let run ?(max_steps = 50_000_000) ?clock:clk ?sink ?shards ?tracer
    ?(trace_pid = 0) m costs =
  (match Machine.config m with
  | { buffer_model = Store_buffer.Abstract; _ } -> ()
  | _ -> invalid_arg "Timing.run: requires the Abstract buffer model");
  let clk = match clk with Some c -> c | None -> { now = 0 } in
  let n = Machine.thread_count m in
  (* One knob for counter collection: attaching the sink here also turns on
     the machine-level counters (loads/stores/occupancy/...); this function
     adds the stall attribution the machine cannot see. With [shards], each
     simulated thread accumulates into its own shard and the batched merge
     below (this run's quiescence point) folds them into the root sink, so
     the reported totals are byte-identical to an unsharded run. *)
  (match sink, shards with
  | Some s, Some sh -> Machine.set_sharded_sink m s sh
  | Some s, None -> Machine.set_sink m s
  | None, _ -> ());
  (* Stall attribution goes to the stalled thread's shard (or the root
     sink when unsharded). *)
  let stall_sink tid s =
    match shards with Some sh -> Telemetry.Shards.shard sh tid | None -> s
  in
  (match tracer with
  | None -> ()
  | Some tr ->
      for tid = 0 to n - 1 do
        Telemetry.Chrome_trace.set_thread_name tr ~pid:trace_pid ~tid
          (Machine.thread_name m tid)
      done);
  let next_store_id = ref 0 in
  let cores =
    Array.init n (fun _ ->
        {
          clock = 0;
          drain_free = 0;
          buffer_emptied_at = 0;
          issue_times = Queue.create ();
          store_ids = Queue.create ();
          store_was_blocked = false;
          instructions = 0;
          loads = 0;
          stores = 0;
          rmws = 0;
          fences = 0;
          fence_stall = 0;
          work_cycles = 0;
        })
  in
  (* [-1] encodes "no event" below, so the selection loop handles ints only
     (no option/tuple allocation per simulated event). *)
  let next_drain_time tid =
    let c = cores.(tid) in
    if Queue.is_empty c.issue_times then -1
    else max c.drain_free (Queue.peek c.issue_times) + costs.drain_latency
  in
  (* Time at which the instruction pending on [tid] can execute, or -1 if
     it must wait for a drain (full buffer / fence / RMW). *)
  let feasible_time tid =
    let c = cores.(tid) in
    match Machine.pending_class m tid with
    | None -> -1
    | Some cls -> (
        match cls with
        | Machine.C_load | Machine.C_work _ | Machine.C_free -> c.clock
        | Machine.C_store ->
            if Machine.store_blocked m tid then begin
              c.store_was_blocked <- true;
              -1
            end
            else c.clock
        | Machine.C_rmw | Machine.C_fence ->
            if Queue.is_empty c.issue_times then max c.clock c.buffer_emptied_at
            else -1)
  in
  let steps = ref 0 in
  let outcome = ref Sched.Quiescent in
  let best_time = ref (-1) in
  let best_kind = ref 0 in
  let best_tid = ref 0 in
  let better time kind tid =
    !best_time < 0
    || time < !best_time
    || time = !best_time
       && (kind < !best_kind || (kind = !best_kind && tid < !best_tid))
  in
  (try
     while not (Machine.quiescent m) do
       if !steps >= max_steps then begin
         outcome := Sched.Max_steps;
         raise Exit
       end;
       (* Select the lexicographically least (time, kind, tid) event; drains
          (kind 0) beat instructions on ties so a load at time t sees every
          store that reached memory by t. *)
       best_time := -1;
       for tid = 0 to n - 1 do
         let dt = next_drain_time tid in
         if dt >= 0 && better dt 0 tid then begin
           best_time := dt;
           best_kind := 0;
           best_tid := tid
         end;
         let ft = feasible_time tid in
         if ft >= 0 && better ft 1 tid then begin
           best_time := ft;
           best_kind := 1;
           best_tid := tid
         end
       done;
       (if !best_time < 0 then begin
          outcome := Sched.Deadlock;
          raise Exit
        end
        else if !best_kind = 0 then begin
          (* drain *)
          let time = !best_time in
          let tid = !best_tid in
          clk.now <- time;
          let c = cores.(tid) in
          Machine.apply m (Machine.Drain (tid, 0));
          ignore (Queue.pop c.issue_times);
          c.drain_free <- time;
          if Queue.is_empty c.issue_times then c.buffer_emptied_at <- time;
          match tracer with
          | None -> ()
          | Some tr ->
              let id = Queue.pop c.store_ids in
              Telemetry.Chrome_trace.async_end tr ~name:"sb-store" ~cat:"sb"
                ~pid:trace_pid ~tid ~ts:time ~id ();
              Telemetry.Chrome_trace.counter tr ~name:"sb-entries" ~cat:"sb"
                ~pid:trace_pid ~tid ~ts:time
                ~values:[ ("entries", Queue.length c.issue_times) ]
                ()
        end
        else begin
          let time = !best_time in
          let tid = !best_tid in
          clk.now <- time;
          let c = cores.(tid) in
          let cls =
            match Machine.pending_class m tid with
            | Some cls -> cls
            | None -> assert false
          in
          (* Grab the description before [apply] consumes the instruction;
             only when tracing — it allocates a string per instruction. *)
          let descr =
            match tracer with
            | None -> None
            | Some _ -> Machine.pending_request m tid
          in
          let clock_before = c.clock in
          Machine.apply m (Machine.Step tid);
          c.instructions <- c.instructions + 1;
          (match cls with
          | Machine.C_load ->
              c.loads <- c.loads + 1;
              c.clock <- time + costs.load_cost
          | Machine.C_store ->
              c.stores <- c.stores + 1;
              c.clock <- time + costs.store_cost;
              Queue.push c.clock c.issue_times;
              (* If the store sat on a full buffer, the wait ended when the
                 drain engine freed a slot at [drain_free]. *)
              if c.store_was_blocked then begin
                c.store_was_blocked <- false;
                match sink with
                | None -> ()
                | Some s ->
                    let s = stall_sink tid s in
                    s.Telemetry.Sink.drain_stall_cycles <-
                      s.Telemetry.Sink.drain_stall_cycles
                      + max 0 (c.drain_free - clock_before)
              end
          | Machine.C_rmw ->
              c.rmws <- c.rmws + 1;
              c.fence_stall <- c.fence_stall + (time - clock_before);
              c.clock <- time + costs.rmw_cost
          | Machine.C_fence ->
              c.fences <- c.fences + 1;
              c.fence_stall <- c.fence_stall + (time - clock_before);
              c.clock <- time + costs.fence_cost
          | Machine.C_work w ->
              c.work_cycles <- c.work_cycles + w;
              c.clock <- time + w
          | Machine.C_free -> c.clock <- time + costs.pause_cost);
          (match cls, sink with
          | (Machine.C_rmw | Machine.C_fence), Some s ->
              let s = stall_sink tid s in
              s.Telemetry.Sink.fence_stall_cycles <-
                s.Telemetry.Sink.fence_stall_cycles + (time - clock_before)
          | _ -> ());
          match tracer with
          | None -> ()
          | Some tr ->
              let stall = time - clock_before in
              (match cls with
              | (Machine.C_rmw | Machine.C_fence) when stall > 0 ->
                  Telemetry.Chrome_trace.complete tr ~name:"fence-stall"
                    ~cat:"stall" ~pid:trace_pid ~tid ~ts:clock_before
                    ~dur:stall ()
              | _ -> ());
              let name =
                match descr with Some d -> d | None -> "instr"
              in
              let cat =
                match cls with
                | Machine.C_load -> "load"
                | Machine.C_store -> "store"
                | Machine.C_rmw -> "rmw"
                | Machine.C_fence -> "fence"
                | Machine.C_work _ -> "work"
                | Machine.C_free -> "free"
              in
              Telemetry.Chrome_trace.complete tr ~name ~cat ~pid:trace_pid
                ~tid ~ts:time
                ~dur:(max 0 (c.clock - time))
                ();
              match cls with
              | Machine.C_store ->
                  let id = !next_store_id in
                  incr next_store_id;
                  Queue.push id c.store_ids;
                  Telemetry.Chrome_trace.async_begin tr ~name:"sb-store"
                    ~cat:"sb" ~pid:trace_pid ~tid ~ts:time ~id ();
                  Telemetry.Chrome_trace.counter tr ~name:"sb-entries"
                    ~cat:"sb" ~pid:trace_pid ~tid ~ts:time
                    ~values:[ ("entries", Queue.length c.issue_times) ]
                    ()
              | _ -> ()
        end);
       incr steps
     done
   with Exit -> ());
  (* Quiescence point: no simulated thread is running, so the batched
     shard merge is safe and the root sink now carries the run's totals. *)
  (match sink, shards with
  | Some s, Some sh -> Telemetry.Shards.merge ~into:s sh
  | _ -> ());
  let threads =
    Array.map
      (fun c ->
        {
          finish_time = c.clock;
          instructions = c.instructions;
          loads = c.loads;
          stores = c.stores;
          rmws = c.rmws;
          fences = c.fences;
          fence_stall = c.fence_stall;
          work_cycles = c.work_cycles;
        })
      cores
  in
  let makespan = Array.fold_left (fun acc c -> max acc c.clock) 0 cores in
  { makespan; outcome = !outcome; steps = !steps; threads }
