type entry = { step : int; tid : int; text : string }

type t = {
  machine : Machine.t;
  mutable entries : entry list;  (* newest first *)
  mutable count : int;
}

let describe_drain mem result =
  match result with
  | Store_buffer.Wrote (a, v) ->
      Printf.sprintf "~ drain %s=%d" (Memory.name mem a) v
  | Store_buffer.Staged (a, v) ->
      Printf.sprintf "~ stage %s=%d into B" (Memory.name mem a) v
  | Store_buffer.Coalesced (a, v) ->
      Printf.sprintf "~ coalesce %s=%d in B" (Memory.name mem a) v

let attach machine =
  let t = { machine; entries = []; count = 0 } in
  Machine.on_event machine (fun ev ->
      let mem = Machine.memory machine in
      let entry =
        match ev with
        | Machine.Ev_exec { tid; instr } -> Some (tid, instr)
        | Machine.Ev_drain { tid; result } ->
            Some (tid, describe_drain mem result)
        | Machine.Ev_flush { tid; addr; value } ->
            Some
              (tid, Printf.sprintf "~ flush B: %s=%d" (Memory.name mem addr) value)
        | Machine.Ev_done tid -> Some (tid, "(done)")
      in
      match entry with
      | None -> ()
      | Some (tid, text) ->
          t.count <- t.count + 1;
          t.entries <- { step = t.count; tid; text } :: t.entries);
  t

let clear t =
  t.entries <- [];
  t.count <- 0

let length t = t.count

let entries t =
  List.rev_map (fun e -> (e.step, e.tid, e.text)) t.entries

let render ?last t =
  let entries = List.rev t.entries in
  let entries =
    match last with
    | None -> entries
    | Some n ->
        let len = List.length entries in
        List.filteri (fun i _ -> i >= len - n) entries
  in
  let threads = Machine.thread_count t.machine in
  let col_width =
    List.fold_left (fun acc e -> max acc (String.length e.text + 2)) 24 entries
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "step  ";
  for tid = 0 to threads - 1 do
    let name = Machine.thread_name t.machine tid in
    Buffer.add_string buf name;
    Buffer.add_string buf (String.make (max 1 (col_width - String.length name)) ' ')
  done;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (6 + (col_width * threads)) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (Printf.sprintf "%4d  " e.step);
      for tid = 0 to threads - 1 do
        if tid = e.tid then begin
          Buffer.add_string buf e.text;
          Buffer.add_string buf
            (String.make (max 1 (col_width - String.length e.text)) ' ')
        end
        else Buffer.add_string buf (String.make col_width ' ')
      done;
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)
