(** The bounded-TSO abstract machine (paper §2, extended per §7.3).

    A machine is a shared {!Memory.t}, a set of threads each with a bounded
    {!Store_buffer.t}, and a transition relation. Scheduling — which enabled
    transition fires next — is external: {!Sched} (random / weighted),
    {!Explore} (bounded exhaustive) and {!Timing} (discrete-event performance
    model) all drive the same machine. *)

type config = {
  sb_capacity : int;  (** store-buffer entries, the S of TSO[S] *)
  buffer_model : Store_buffer.model;
}

val abstract_config : sb_capacity:int -> config
(** The pure TSO[S] abstract machine of §2. *)

val realistic_config : sb_capacity:int -> coalesce:bool -> config
(** The §7.3 microarchitectural model: an egress buffer B raises the
    observable reordering bound to [sb_capacity + 1], and [coalesce] enables
    same-address store coalescing in B. *)

val pso_config : sb_capacity:int -> config
(** Bounded partial store order (per-address drain lanes): the §10
    future-work model, under which TSO-dependent algorithms break. *)

type t

val create : ?mem:Memory.t -> config -> t
val memory : t -> Memory.t
val config : t -> config

(** {1 Threads} *)

type tid = int

val spawn : t -> name:string -> (unit -> unit) -> tid
(** Register a thread program. The program starts paused at its first
    instruction. Threads must be spawned before the machine is driven. *)

val thread_count : t -> int
val thread_name : t -> tid -> string
val thread_done : t -> tid -> bool
val all_done : t -> bool
val buffered_stores : t -> tid -> int
(** Stores of thread [tid] not yet globally visible (buffer proper plus B). *)

val buffered_entries : t -> tid -> (Addr.t * int) list
(** The stores of thread [tid] not yet globally visible, oldest-first (the
    egress slot B first when occupied, then the buffer proper). These are
    exactly the program-order-earlier stores a load committing {e now}
    would be reordered ahead of — the raw material of the forensics
    layer's reorder witnesses. Cold path; allocates. *)

val quiescent : t -> bool
(** All threads finished and all store buffers drained. *)

val steps : t -> int
(** Number of transitions applied so far. *)

(** {1 Transitions} *)

type transition =
  | Step of tid  (** execute the thread's pending instruction *)
  | Drain of tid * int
      (** memory subsystem propagates a store of the thread's buffer: lane 0
          (the oldest store) for the FIFO models; one lane per pending
          address for PSO *)
  | Flush of tid  (** memory subsystem writes the egress buffer B to memory *)

val enabled : t -> transition list
(** All transitions enabled in the current state, in a deterministic order
    (threads by tid; per thread [Flush], then [Drain] lanes, then [Step]).
    Empty iff the machine is quiescent or deadlocked. Allocates a fresh
    list; the drivers on the hot path use {!enabled_into} instead. *)

val enabled_iter : t -> (transition -> unit) -> unit
(** Apply a function to every enabled transition, in {!enabled} order,
    without materialising a list. *)

type tbuf
(** A reusable buffer of transitions, so a driver taking millions of steps
    can recompute the enabled set without allocating per step. Transitions
    handed out through it are the machine's preallocated per-thread values. *)

val tbuf_create : unit -> tbuf
val tbuf_length : tbuf -> int
val tbuf_get : tbuf -> int -> transition
val tbuf_set : tbuf -> int -> transition -> unit

val tbuf_truncate : tbuf -> int -> unit
(** Shorten the buffer (used by the explorer's in-place no-op filter). *)

val enabled_into : t -> tbuf -> int
(** Refill [tbuf] with the enabled set (in {!enabled} order), returning its
    length. The previous contents are discarded. Steady-state refills are
    allocation-free for the FIFO buffer models. *)

val pending_request : t -> tid -> string option
(** Description of the instruction a paused thread waits to execute. *)

type event =
  | Ev_exec of { tid : tid; instr : string }
  | Ev_drain of { tid : tid; result : Store_buffer.drain_result }
  | Ev_flush of { tid : tid; addr : Addr.t; value : int }
  | Ev_done of tid

val apply : t -> transition -> unit
(** Fire one enabled transition. @raise Invalid_argument if not enabled.
    Events (including their formatted instruction strings) are only
    constructed when at least one listener is registered, so driving an
    unobserved machine allocates nothing per transition. *)

val on_event : t -> (event -> unit) -> unit
(** Register a trace listener, called after every {!apply}. Listeners fire
    in registration order; registration is amortised O(1). *)

(** {1 Telemetry} *)

val set_sink : t -> Telemetry.Sink.t -> unit
(** Attach a counter sink. While attached, every {!apply} updates the
    sink's machine-level counters (loads, stores, cas, fences, drains,
    flushes, coalesces, store-buffer occupancy, ...). Mirrors the listener
    laziness: with no sink attached the per-transition cost is one mutable
    field read. *)

val set_sharded_sink : t -> Telemetry.Sink.t -> Telemetry.Shards.t -> unit
(** Attach a sharded counter plane: events on simulated thread [tid] are
    charged to shard [tid mod n] instead of the root sink, so per-thread
    accounting never shares a cache line. The root sink receives nothing
    until the caller merges the shards into it at a quiescence point
    ({!Telemetry.Shards.merge}); after that merge the totals are
    byte-identical to what a plain {!set_sink} run would have produced. *)

val clear_sink : t -> unit

val sink : t -> Telemetry.Sink.t option
(** The root sink, attached by {!set_sink} or {!set_sharded_sink}. Under
    sharding it holds nothing until the shards are merged. *)

val counters : t -> Telemetry.Sink.t array
(** The counter routing table: [[||]] when detached, [[|root|]] for a
    plain sink, one entry per shard when sharded. Exposed so the queue
    layer's counting shim can route per-queue writes with a single length
    test; callers must not resize it. *)

val count_delta_check : t -> unit
(** Bump the δ-check counter (fence-free steal-side bound checks); no-op
    when no sink is attached. Called by the deque implementations, which
    do not know the stealing thread — under sharding the check is charged
    to shard 0 (merged totals are unaffected). *)

(** {1 Introspection for the timing engine} *)

type request_class =
  | C_load
  | C_store
  | C_rmw  (** cas / fetch-and-add *)
  | C_fence
  | C_work of int
  | C_free  (** label / pause *)

val pending_class : t -> tid -> request_class option
(** Classification of the pending instruction, [None] if the thread is done. *)

val pending_load : t -> tid -> (Addr.t * int * bool) option
(** If the thread's pending instruction is a plain load: its address, the
    value it would observe if it committed in the current state, and
    whether that value forwards from the thread's own store buffer rather
    than memory. [None] for every other instruction class (atomic RMWs
    read memory too, but they only execute on an empty buffer, so they can
    never be reordered with earlier stores). Used by the forensics layer
    to capture reorder witnesses just before a recorded load commits. *)

val store_blocked : t -> tid -> bool
(** The thread's pending instruction is a store and the buffer is full. *)

val fingerprint : t -> int
(** An incremental structural hash (FNV-style over ints, no allocation
    beyond two scratch cells) of the complete machine state: memory
    contents and, per thread, the control state (done/paused plus the
    pending instruction), the program position (a rolling hash of every
    response the thread has received — a deterministic thread program is a
    function of its response history), the egress slot B, and the buffer
    proper. Equal fingerprints imply equal machine states (modulo hash
    collisions), which is what lets {!Explore.search}'s memoization prune
    converged interleavings soundly. Host-side effects performed by thread
    bodies are covered exactly when they are a function of the response
    history and commute across threads (true for per-thread result
    registers and commutative counters). *)

val fingerprint_digest : t -> string
(** The pre-optimisation MD5 digest of the same state components, kept as a
    debug cross-check: the test suite asserts that {!fingerprint} and this
    digest induce the same equality classes over explored states. Slow;
    not used by the explorer. *)

(** {1 Transition footprints}

    The dependence structure sleep-set partial-order reduction
    ({!Explore.search} [~por:true]) is built on. Every machine transition
    reads and/or writes at most one shared-memory address:

    - a [Step] of a load reads its address; a [Step] of a CAS / fetch-add
      reads and writes its address; a [Step] of a {e store} touches no
      shared address at all — the store only enters the issuing thread's
      private buffer (the memory write happens at the later [Drain]/[Flush]
      that propagates it, and that transition carries the write);
    - a [Drain] writes the address of the oldest buffered store (per-lane
      under PSO); in the realistic model a drain that merely stages into B
      still claims the write, conservatively — staging changes what a
      subsequent same-address [Flush] writes;
    - a [Flush] writes the address held in B.

    Two transitions are {!independent} iff they belong to different threads
    and no write of one conflicts with a read or write of the other.
    Independent transitions commute: applying them in either order reaches
    the same machine state, and neither enables nor disables the other
    (enabledness of a thread's transitions depends only on that thread's
    own status and buffer, which the other thread's transition cannot
    touch). *)

type footprint

val footprint : t -> transition -> footprint
(** The footprint of an {e enabled} transition {e in the current state}
    (a drain's target address is the buffer head now; it changes as the
    buffer moves, so footprints must be taken at the state where the
    transition is enabled). *)

val independent : footprint -> footprint -> bool
(** Symmetric; [false] for two transitions of the same thread. *)

val footprint_tid : footprint -> tid
val footprint_read : footprint -> int
(** Memory address index the transition reads, or [-1] for none. *)

val footprint_write : footprint -> int
(** Memory address index the transition writes (conservatively including
    staging into B), or [-1] for none. *)

(** {1 Snapshot / restore}

    One-shot effect continuations cannot be cloned, so machine states
    cannot be saved by copying alone. Instead, a {e recording} machine
    keeps each thread's decoded response log; {!snapshot} copies that log
    together with memory, buffers and hashes into preallocated scratch, and
    {!restore_into} rebuilds the state onto a {e fresh} machine built by
    the same deterministic constructor — fast-forwarding each new
    continuation through the recorded responses (no memory or buffer
    effects re-run; the snapshot already holds the data state). This turns
    the explorer's sibling exploration from an O(depth) replay of machine
    transitions from the root into an O(state + instructions-executed)
    restore with no enabled-set recomputation, no drain/flush re-execution
    and no scheduling. *)

val set_record_responses : t -> bool -> unit
(** Turn response recording on or off. Recording must be enabled before the
    machine executes its first instruction (@raise Invalid_argument
    otherwise); while off, {!apply} pays a single boolean test. Turning
    recording off discards the logs. *)

val record_responses : t -> bool

type snapshot
(** Growable scratch for one captured state; reusable across {!snapshot}
    calls (capture into an already-sized snapshot allocates nothing). *)

val snapshot_create : unit -> snapshot

val snapshot : t -> snapshot -> unit
(** Capture the machine's complete state ([t] must be recording:
    @raise Invalid_argument otherwise). The snapshot shares no mutable
    structure with the machine. *)

val restore_into : snapshot -> t -> unit
(** [restore_into snap t] rebuilds the captured state onto [t], which must
    be a {e fresh, undriven} machine built by the same deterministic
    constructor as the snapshotted one (same threads, same memory layout:
    @raise Invalid_argument otherwise, or if a thread's replayed program
    diverges from the recorded status). [t] is left recording, so it can
    itself be snapshotted. Bumps the sink's [snapshot_restores] counter
    when one is attached.

    {b Attached listeners and sinks survive the restore} — they belong to
    the target machine [t], not to the snapshot, and restoring neither
    detaches nor re-registers them. But the fast-forward is {e silent}:
    the recorded responses are fed straight to the continuations without
    going through {!apply}, so no {!event} is emitted and no sink counter
    (other than [snapshot_restores]) is bumped for the instructions being
    replayed. A {!Trace} attached to [t] before the restore therefore
    records only the transitions applied {e after} it — by design: the
    explorer restores mid-schedule states whose prefixes were already
    observed once, and re-emitting them would double-count every counter.
    To obtain a complete event stream of a recorded schedule, replay it
    from the root with the listener attached (what the forensics layer
    does) instead of restoring into an observed machine. *)
