open Explore.Internal

(* A pending subtree: the prefix that reaches it plus the CHESS summary of
   that prefix and the sleep set it inherited (always [] unless POR is
   on) — sleep sets travel with frontier tasks. *)
type task = {
  prefix : Prefix.t;
  depth : int;
  last_unit : Explore.unit_id option;
  preemptions : int;
  sleep : sleep_entry list;
  mass : float;
      (** Knuth tree-mass share of this subtree (root task = 1.0); split
          evenly among children at frontier branch nodes, exactly as the
          sequential search splits it at its own branch nodes *)
}

(* The immediate outcomes of expanding a task by one branching level, in
   lexicographic (= sequential DFS) order: outcomes already decided during
   expansion, and subtrees still to explore. Keeping the order is what
   makes the merged result byte-identical to the sequential search. *)
type item = Settled of acc | Subtree of task

type cfg = {
  mk : unit -> Explore.instance;
  max_depth : int;
  preemption_bound : int option;
  max_failures : int;
  memo : memo option;
  on_run : acc -> unit;
  por : bool;
  dpor : bool;
  snapshots : bool;
}

let make_ctx cfg acc inst =
  {
    mk = cfg.mk;
    max_depth = cfg.max_depth;
    preemption_bound = cfg.preemption_bound;
    max_failures = cfg.max_failures;
    memo = cfg.memo;
    acc;
    on_run = cfg.on_run;
    pool = pool_create ();
    por = cfg.por;
    dpor =
      (* Each task gets fresh DPOR state: races between a task's subtree
         and its prefix need no tracking because every frontier split node
         enumerates all of its children (the unreduced sound baseline), so
         the reversals those races would demand are explored anyway. *)
      (if cfg.dpor then
         Some
           (dpor_create
              ~nthreads:(Machine.thread_count inst.Explore.machine))
       else None);
    use_snapshots = cfg.snapshots;
    spool = spool_create ();
    mass = 1.0;
  }

(* One visited-state cache shared by every domain, sharded by fingerprint
   hash so concurrent lookups rarely contend on the same lock. Sharing the
   cache is what lets parallel memoized search prune interleavings that
   converge across subtree boundaries — with per-task caches most of the
   memoization benefit evaporates. The price is that [runs]/[memo_hits]
   become schedule-dependent (whichever domain reaches a state first records
   it); verdicts are unaffected because a state is only ever pruned after
   some domain has committed to exploring it with at least as much remaining
   budget. *)
let shared_memo () =
  let n_shards = 64 in
  let shards =
    Array.init n_shards (fun _ -> (Mutex.create (), Hashtbl.create 256))
  in
  {
    seen =
      (fun fp ~depth_rem ~preempt_rem ->
        (* The fingerprint is already a mixed hash; its low bits pick the
           shard directly. *)
        let lock, tbl = shards.(fp land (n_shards - 1)) in
        Mutex.lock lock;
        let hit = memo_tbl_check tbl fp ~depth_rem ~preempt_rem in
        Mutex.unlock lock;
        hit);
  }

(* Sleep-skip accounting outside a ctx (frontier expansion): mirror
   [Explore.Internal.sleep_skip]. *)
let skip_one (acc : acc) m =
  acc.sleep_skips <- acc.sleep_skips + 1;
  match Machine.sink m with
  | None -> ()
  | Some s ->
      s.Telemetry.Sink.por_sleep_skips <- s.Telemetry.Sink.por_sleep_skips + 1

(* Expand one task by one branching level: replay its prefix, walk forced
   (singleton-choice) steps in place, and split at the first node with a
   real choice. Terminal nodes are settled through [extend] itself so their
   accounting (check, fail, run counting) is exactly the sequential one. *)
let expand cfg task =
  let inst = Prefix.replay ~mk:cfg.mk task.prefix in
  let prefix = task.prefix in
  let terminal depth last_unit sleep =
    let acc = make_acc () in
    let ctx = make_ctx cfg acc inst in
    ctx.mass <- task.mass;
    (try extend ctx inst prefix depth last_unit task.preemptions sleep
     with Explore.Stop -> ());
    [ Settled acc ]
  in
  let rec walk depth last_unit sleep =
    let m = inst.Explore.machine in
    match Explore.next_choices m with
    | [] -> terminal depth last_unit sleep
    | _ when depth >= cfg.max_depth -> terminal depth last_unit sleep
    | [ tr ] ->
        if cfg.por && sleep_mem sleep tr then begin
          (* The sequential search backtracks here without completing a
             run; settle the subtree with exactly that accounting. *)
          let acc = make_acc () in
          acc.peak_depth <- depth;
          acc.covered <- task.mass;
          skip_one acc m;
          [ Settled acc ]
        end
        else begin
          let sleep =
            if cfg.por && sleep <> [] then
              sleep_filter sleep (Machine.footprint m tr)
            else sleep
          in
          Machine.apply m tr;
          Prefix.push prefix 0 tr;
          let last_unit =
            match Explore.unit_of tr with
            | U_memory -> last_unit
            | u -> Some u
          in
          walk (depth + 1) last_unit sleep
        end
    | ts ->
        let node = make_acc () in
        (* This branching node is visited here, not by [extend]; account its
           depth so the merged depth frontier matches the sequential search
           even when every child is pruned by the preemption bound. *)
        node.peak_depth <- depth;
        (* The frontier split node is a branch node of the sequential tree:
           its mass splits evenly among the children, and children settled
           here (slept, pruned) credit their share to the split node's
           accumulator. *)
        let cmass = task.mass /. float_of_int (List.length ts) in
        (* Footprints are a function of this node's state; take them before
           building children. *)
        let fps =
          if cfg.por then Array.of_list (List.map (Machine.footprint m) ts)
          else [||]
        in
        let sleep_now = ref sleep in
        let children = ref [] in
        List.iteri
          (fun i tr ->
            if cfg.por && sleep_mem !sleep_now tr then begin
              node.covered <- node.covered +. cmass;
              skip_one node m
            end
            else begin
              let cost = preemption_cost ~last_unit ~choices:ts tr in
              let within =
                match cfg.preemption_bound with
                | None -> true
                | Some b -> task.preemptions + cost <= b
              in
              if not within then begin
                node.covered <- node.covered +. cmass;
                node.pruned <- node.pruned + 1
              end
              else begin
                Prefix.push prefix i tr;
                let child_prefix = Prefix.copy prefix in
                Prefix.pop prefix;
                let child_sleep =
                  if cfg.por then sleep_filter !sleep_now fps.(i) else []
                in
                children :=
                  Subtree
                    {
                      prefix = child_prefix;
                      depth = depth + 1;
                      last_unit =
                        (match Explore.unit_of tr with
                        | U_memory -> last_unit
                        | u -> Some u);
                      preemptions = task.preemptions + cost;
                      sleep = child_sleep;
                      mass = cmass;
                    }
                  :: !children;
                (* Under no preemption bound a fully explored child always
                   enters the sleep set, so the insertion can happen at
                   expansion time, before the subtree runs — the frontier
                   split applies byte-identical reductions to the
                   sequential search's. Under a bound the sequential rule
                   depends on the subtree's outcome, unknown here, so
                   nothing is inserted at frontier branch nodes: verdicts
                   are unaffected, but [runs]/[sleep_skips] can exceed the
                   sequential POR search's. (With [dpor] the split node is
                   the unreduced baseline either way: all children are
                   kept, and the reduction happens inside each subtree.) *)
                if cfg.por && cfg.preemption_bound = None then
                  sleep_now := { sl_tr = tr; sl_fp = fps.(i) } :: !sleep_now
              end
            end)
          ts;
        let children = List.rev !children in
        if node.pruned > 0 || node.sleep_skips > 0 then Settled node :: children
        else children
  in
  walk task.depth task.last_unit task.sleep

let run_task cfg task =
  let acc = make_acc () in
  (try
     let inst = Prefix.replay ~mk:cfg.mk task.prefix in
     let ctx = make_ctx cfg acc inst in
     ctx.mass <- task.mass;
     extend ctx inst task.prefix task.depth task.last_unit task.preemptions
       task.sleep
   with Explore.Stop -> ());
  acc

let merge ~max_failures accs =
  let merged = make_acc () in
  List.iter
    (fun (a : acc) ->
      (* Every per-subtree accumulator is folded in full. The former code
         dropped whole accumulators once the run budget was reached, so
         with [--jobs N] a binding budget silently discarded the statistics
         (and recorded failures!) of entire explored subtrees. The global
         budget is enforced during the search by the shared run counter;
         the merge only has to report what was actually explored — which
         may slightly exceed [max_runs], exactly as the caller's domains
         did. When the budget does not bind, totals are exact and
         byte-identical to the sequential search. *)
      merged.runs <- merged.runs + a.runs;
      merged.truncated <- merged.truncated + a.truncated;
      merged.deadlocks <- merged.deadlocks + a.deadlocks;
      merged.pruned <- merged.pruned + a.pruned;
      merged.memo_hits <- merged.memo_hits + a.memo_hits;
      merged.sleep_skips <- merged.sleep_skips + a.sleep_skips;
      merged.peak_depth <- max merged.peak_depth a.peak_depth;
      merged.covered <- merged.covered +. a.covered;
      List.iter
        (fun f ->
          if merged.failure_count < max_failures then begin
            merged.failures_rev <- f :: merged.failures_rev;
            merged.failure_count <- merged.failure_count + 1
          end)
        (List.rev a.failures_rev))
    accs;
  merged

type progress = {
  tasks_done : int;
  tasks_total : int;
  total_runs : int;
  domains : int;
  covered : float;
}

type frontier_stats = {
  fr_domains : int;
  fr_tasks : int;
  fr_splits : int;
  fr_steals : int;
  fr_steal_attempts : int;
  fr_runs_per_domain : int array;
  fr_tasks_per_domain : int array;
}

let sequential_frontier_stats runs =
  {
    fr_domains = 1;
    fr_tasks = 1;
    fr_splits = 0;
    fr_steals = 0;
    fr_steal_attempts = 0;
    fr_runs_per_domain = [| runs |];
    fr_tasks_per_domain = [| 1 |];
  }

(* The dynamic frontier is a tree of tasks. A node with split budget left
   is expanded by one branching level and its subtree children become new
   nodes (budget - 1); a node without budget is explored in place by the
   sequential core. The tree records every outcome at the position the
   sequential DFS would visit it, so the merge — a lexicographic walk of
   the tree — is independent of which domain ran what in which order:
   the byte-identical contracts carry over from the static frontier. *)
type tnode = {
  t_task : task;
  t_budget : int;
  mutable t_items : titem list;  (** set once, by the processing domain *)
  mutable t_acc : acc option;  (** set once, if explored as a leaf *)
}

and titem = T_settled of acc | T_child of tnode

(* ceil(log2 (4 * jobs)) branch levels of splitting gives at least 4
   subtrees per domain under any branching >= 2 — enough slack for the
   deques to balance uneven subtree sizes. *)
let split_budget jobs =
  let target = 4 * jobs in
  let rec go b c = if c >= target then b else go (b + 1) (2 * c) in
  go 0 1

let search_with_frontier ?(max_depth = Explore.default_max_depth)
    ?(max_runs = 200_000) ?(preemption_bound = None) ?(max_failures = 5)
    ?(memo = false) ?(por = false) ?(dpor = false) ?memo_store
    ?(snapshots = true) ?jobs ?on_progress ?(progress_every = 4096) ~mk () =
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> Domain.recommended_domain_count ()
  in
  if jobs = 1 then begin
    let st =
      Explore.search ~max_depth ~max_runs ~preemption_bound ~max_failures
        ~memo ~por ~dpor ?memo_store ~snapshots
        ?on_progress:
          (Option.map
             (fun f (s : Explore.stats) ->
               f
                 {
                   tasks_done = 0;
                   tasks_total = 1;
                   total_runs = s.Explore.runs;
                   domains = 1;
                   covered = s.Explore.covered;
                 })
             on_progress)
        ~progress_every ~mk ()
    in
    (st, sequential_frontier_stats st.Explore.runs)
  end
  else begin
    let por = por || dpor in
    let total_runs = Atomic.make 0 in
    let tasks_done = Atomic.make 0 in
    let tasks_total = Atomic.make 1 in
    let stopped = Atomic.make false in
    (* Live covered-mass accumulator, as a fixed-point integer so every
       domain can add its retired tasks' shares atomically. Coarser than
       the sequential estimate (tasks credit only on retirement), but the
       split budget guarantees >= 4*jobs tasks, so it moves. *)
    let covered_scale = 1073741824.0 (* 2^30 *) in
    let covered_fp = Atomic.make 0 in
    let credit_live (a : acc) =
      let fp = int_of_float (a.covered *. covered_scale) in
      if fp > 0 then ignore (Atomic.fetch_and_add covered_fp fp)
    in
    let progress_every = max 1 progress_every in
    (* Progress is observed only from the initial domain (the one that
       called [search]): the reporter callback is not required to be
       thread-safe. The counters it reads are global atomics, so the
       snapshot covers every domain's work, sampled at the granularity of
       the initial domain's own completed runs. *)
    let main_domain = Domain.self () in
    let on_run (a : acc) =
      a.runs <- a.runs + 1;
      let total = Atomic.fetch_and_add total_runs 1 + 1 in
      (match on_progress with
      | Some f
        when Domain.self () = main_domain && total mod progress_every = 0 ->
          f
            {
              tasks_done = Atomic.get tasks_done;
              tasks_total = Atomic.get tasks_total;
              total_runs = total;
              domains = jobs;
              covered =
                min 1.0 (float_of_int (Atomic.get covered_fp) /. covered_scale);
            }
      | _ -> ());
      if total >= max_runs then begin
        Atomic.set stopped true;
        raise Explore.Stop
      end
    in
    let memo_impl =
      match memo_store with
      | Some store ->
          Some
            {
              seen =
                (fun fp ~depth_rem ~preempt_rem ->
                  Memo_store.seen store fp ~depth_rem ~preempt_rem);
            }
      | None -> if memo then Some (shared_memo ()) else None
    in
    let cfg =
      {
        mk = (if snapshots then recording_mk mk else mk);
        max_depth;
        preemption_bound;
        max_failures;
        memo = memo_impl;
        on_run;
        por;
        dpor;
        snapshots;
      }
    in
    let root =
      {
        t_task =
          {
            prefix = Prefix.create ();
            depth = 0;
            last_unit = None;
            preemptions = 0;
            sleep = [];
            mass = 1.0;
          };
        t_budget = split_budget jobs;
        t_items = [];
        t_acc = None;
      }
    in
    (* One work-stealing deque per domain (the repo's own Chase–Lev): each
       owner pushes the children it creates and pops LIFO; an idle domain
       steals FIFO from the others round-robin. [outstanding] counts nodes
       created but not fully processed — children are added before their
       parent is retired, so it only reaches 0 when the whole tree is
       done. *)
    let deques =
      Array.init jobs (fun _ -> Ws_native.Chase_lev.create ())
    in
    let outstanding = Atomic.make 1 in
    let steals = Array.make jobs 0 in
    let steal_attempts = Array.make jobs 0 in
    let splits = Array.make jobs 0 in
    let runs_d = Array.make jobs 0 in
    let tasks_d = Array.make jobs 0 in
    Ws_native.Chase_lev.push deques.(0) root;
    let process k node =
      tasks_d.(k) <- tasks_d.(k) + 1;
      if node.t_budget > 0 then begin
        splits.(k) <- splits.(k) + 1;
        let titems =
          List.map
            (function
              | Settled a ->
                  runs_d.(k) <- runs_d.(k) + a.runs;
                  credit_live a;
                  T_settled a
              | Subtree t ->
                  T_child
                    {
                      t_task = t;
                      t_budget = node.t_budget - 1;
                      t_items = [];
                      t_acc = None;
                    })
            (expand cfg node.t_task)
        in
        node.t_items <- titems;
        let children =
          List.filter_map
            (function T_child c -> Some c | T_settled _ -> None)
            titems
        in
        (match children with
        | [] -> ()
        | _ ->
            let nc = List.length children in
            ignore (Atomic.fetch_and_add outstanding nc);
            ignore (Atomic.fetch_and_add tasks_total nc);
            List.iter (fun c -> Ws_native.Chase_lev.push deques.(k) c) children)
      end
      else begin
        let a = run_task cfg node.t_task in
        runs_d.(k) <- runs_d.(k) + a.runs;
        credit_live a;
        node.t_acc <- Some a
      end;
      Atomic.incr tasks_done
    in
    let worker k =
      let grab () =
        match Ws_native.Chase_lev.pop deques.(k) with
        | Some _ as r -> r
        | None ->
            let rec from d =
              if d >= jobs then None
              else begin
                let v = (k + d) mod jobs in
                steal_attempts.(k) <- steal_attempts.(k) + 1;
                match Ws_native.Chase_lev.steal_retry deques.(v) with
                | Some _ as r ->
                    steals.(k) <- steals.(k) + 1;
                    r
                | None -> from (d + 1)
              end
            in
            from 1
      in
      let rec loop () =
        if Atomic.get outstanding > 0 then begin
          (match grab () with
          | Some node ->
              process k node;
              (* After [process]: any children are already counted, so the
                 counter cannot dip to 0 with work still pending. *)
              Atomic.decr outstanding
          | None -> Domain.cpu_relax ());
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    List.iter Domain.join domains;
    (* Deterministic merge: a lexicographic walk of the task tree yields
       every accumulator in sequential DFS order, whatever the domain
       schedule was. *)
    let rec collect node =
      match node.t_acc with
      | Some a -> [ a ]
      | None ->
          List.concat_map
            (function T_settled a -> [ a ] | T_child c -> collect c)
            node.t_items
    in
    let st = stats_of_acc (merge ~max_failures (collect root)) in
    (* As in the sequential search: a run that was never stopped covered
       the whole tree; snap the float accumulation to the exact answer. *)
    let st =
      if Atomic.get stopped then st else { st with Explore.covered = 1.0 }
    in
    let st =
      match memo_store with
      | None -> st
      | Some store ->
          let failures =
            Memo_store.merge_failures store ~max_failures st.Explore.failures
          in
          if not (Atomic.get stopped) then begin
            match Memo_store.commit store ~failures with
            | Ok () -> ()
            | Error e -> failwith ("memo store commit failed: " ^ e)
          end;
          { st with Explore.failures }
    in
    let sum = Array.fold_left ( + ) 0 in
    ( st,
      {
        fr_domains = jobs;
        fr_tasks = sum tasks_d;
        fr_splits = sum splits;
        fr_steals = sum steals;
        fr_steal_attempts = sum steal_attempts;
        fr_runs_per_domain = runs_d;
        fr_tasks_per_domain = tasks_d;
      } )
  end

let frontier_to_sink fr (sink : Telemetry.Sink.t) =
  sink.Telemetry.Sink.frontier_tasks <-
    sink.Telemetry.Sink.frontier_tasks + fr.fr_tasks;
  sink.Telemetry.Sink.frontier_steals <-
    sink.Telemetry.Sink.frontier_steals + fr.fr_steals;
  sink.Telemetry.Sink.frontier_steal_attempts <-
    sink.Telemetry.Sink.frontier_steal_attempts + fr.fr_steal_attempts

let search ?max_depth ?max_runs ?preemption_bound ?max_failures ?memo ?por
    ?dpor ?memo_store ?snapshots ?jobs ?sink ?on_progress ?progress_every ~mk
    () =
  let st, fr =
    search_with_frontier ?max_depth ?max_runs ?preemption_bound ?max_failures
      ?memo ?por ?dpor ?memo_store ?snapshots ?jobs ?on_progress
      ?progress_every ~mk ()
  in
  (match sink with None -> () | Some s -> frontier_to_sink fr s);
  st
