open Explore.Internal

(* A pending subtree: the prefix that reaches it plus the CHESS summary of
   that prefix and the sleep set it inherited (always [] unless POR is
   on) — sleep sets travel with frontier tasks. *)
type task = {
  prefix : Prefix.t;
  depth : int;
  last_unit : Explore.unit_id option;
  preemptions : int;
  sleep : sleep_entry list;
}

(* The frontier is an ordered list of items in lexicographic (= sequential
   DFS) order: outcomes already decided during expansion, and subtrees still
   to explore. Keeping the order is what makes the merged result
   byte-identical to the sequential search. *)
type item = Settled of acc | Subtree of task

type cfg = {
  mk : unit -> Explore.instance;
  max_depth : int;
  preemption_bound : int option;
  max_failures : int;
  memo : memo option;
  on_run : acc -> unit;
  por : bool;
  snapshots : bool;
}

let make_ctx cfg acc =
  {
    mk = cfg.mk;
    max_depth = cfg.max_depth;
    preemption_bound = cfg.preemption_bound;
    max_failures = cfg.max_failures;
    memo = cfg.memo;
    acc;
    on_run = cfg.on_run;
    pool = pool_create ();
    por = cfg.por;
    use_snapshots = cfg.snapshots;
    spool = spool_create ();
  }

(* One visited-state cache shared by every domain, sharded by fingerprint
   hash so concurrent lookups rarely contend on the same lock. Sharing the
   cache is what lets parallel memoized search prune interleavings that
   converge across subtree boundaries — with per-task caches most of the
   memoization benefit evaporates. The price is that [runs]/[memo_hits]
   become schedule-dependent (whichever domain reaches a state first records
   it); verdicts are unaffected because a state is only ever pruned after
   some domain has committed to exploring it with at least as much remaining
   budget. *)
let shared_memo () =
  let n_shards = 64 in
  let shards =
    Array.init n_shards (fun _ -> (Mutex.create (), Hashtbl.create 256))
  in
  {
    seen =
      (fun fp ~depth_rem ~preempt_rem ->
        (* The fingerprint is already a mixed hash; its low bits pick the
           shard directly. *)
        let lock, tbl = shards.(fp land (n_shards - 1)) in
        Mutex.lock lock;
        let hit = memo_tbl_check tbl fp ~depth_rem ~preempt_rem in
        Mutex.unlock lock;
        hit);
  }

(* Sleep-skip accounting outside a ctx (frontier expansion): mirror
   [Explore.Internal.sleep_skip]. *)
let skip_one (acc : acc) m =
  acc.sleep_skips <- acc.sleep_skips + 1;
  match Machine.sink m with
  | None -> ()
  | Some s ->
      s.Telemetry.Sink.por_sleep_skips <- s.Telemetry.Sink.por_sleep_skips + 1

(* Expand one task by one branching level: replay its prefix, walk forced
   (singleton-choice) steps in place, and split at the first node with a
   real choice. Terminal nodes are settled through [extend] itself so their
   accounting (check, fail, run counting) is exactly the sequential one. *)
let expand cfg task =
  let inst = Prefix.replay ~mk:cfg.mk task.prefix in
  let prefix = task.prefix in
  let terminal depth last_unit sleep =
    let acc = make_acc () in
    (try
       extend (make_ctx cfg acc) inst prefix depth last_unit task.preemptions
         sleep
     with Explore.Stop -> ());
    [ Settled acc ]
  in
  let rec walk depth last_unit sleep =
    let m = inst.Explore.machine in
    match Explore.next_choices m with
    | [] -> terminal depth last_unit sleep
    | _ when depth >= cfg.max_depth -> terminal depth last_unit sleep
    | [ tr ] ->
        if cfg.por && sleep_mem sleep tr then begin
          (* The sequential search backtracks here without completing a
             run; settle the subtree with exactly that accounting. *)
          let acc = make_acc () in
          acc.peak_depth <- depth;
          skip_one acc m;
          [ Settled acc ]
        end
        else begin
          let sleep =
            if cfg.por && sleep <> [] then
              sleep_filter sleep (Machine.footprint m tr)
            else sleep
          in
          Machine.apply m tr;
          Prefix.push prefix 0 tr;
          let last_unit =
            match Explore.unit_of tr with
            | U_memory -> last_unit
            | u -> Some u
          in
          walk (depth + 1) last_unit sleep
        end
    | ts ->
        let node = make_acc () in
        (* This branching node is visited here, not by [extend]; account its
           depth so the merged depth frontier matches the sequential search
           even when every child is pruned by the preemption bound. *)
        node.peak_depth <- depth;
        (* Footprints are a function of this node's state; take them before
           building children. *)
        let fps =
          if cfg.por then Array.of_list (List.map (Machine.footprint m) ts)
          else [||]
        in
        let sleep_now = ref sleep in
        let children = ref [] in
        List.iteri
          (fun i tr ->
            if cfg.por && sleep_mem !sleep_now tr then skip_one node m
            else begin
              let cost = preemption_cost ~last_unit ~choices:ts tr in
              let within =
                match cfg.preemption_bound with
                | None -> true
                | Some b -> task.preemptions + cost <= b
              in
              if not within then node.pruned <- node.pruned + 1
              else begin
                Prefix.push prefix i tr;
                let child_prefix = Prefix.copy prefix in
                Prefix.pop prefix;
                let child_sleep =
                  if cfg.por then sleep_filter !sleep_now fps.(i) else []
                in
                children :=
                  Subtree
                    {
                      prefix = child_prefix;
                      depth = depth + 1;
                      last_unit =
                        (match Explore.unit_of tr with
                        | U_memory -> last_unit
                        | u -> Some u);
                      preemptions = task.preemptions + cost;
                      sleep = child_sleep;
                    }
                  :: !children;
                (* Under no preemption bound a fully explored child always
                   enters the sleep set, so the insertion can happen at
                   expansion time, before the subtree runs — the frontier
                   split applies byte-identical reductions to the
                   sequential search's. Under a bound the sequential rule
                   depends on the subtree's outcome, unknown here, so
                   nothing is inserted at frontier branch nodes: verdicts
                   are unaffected, but [runs]/[sleep_skips] can exceed the
                   sequential POR search's. *)
                if cfg.por && cfg.preemption_bound = None then
                  sleep_now := { sl_tr = tr; sl_fp = fps.(i) } :: !sleep_now
              end
            end)
          ts;
        let children = List.rev !children in
        if node.pruned > 0 || node.sleep_skips > 0 then Settled node :: children
        else children
  in
  walk task.depth task.last_unit task.sleep

(* Grow the frontier until it holds enough subtrees to feed every domain,
   replacing each subtree by its children in place (which preserves
   lexicographic order). The task count is carried incrementally across
   rounds — each expansion adjusts it by (children - 1) — and a round stops
   scanning as soon as the running count reaches [target], leaving the rest
   of the frontier untouched (the former version re-counted the whole list
   with a fold every round and always rebuilt it end to end). *)
let build_frontier cfg ~target =
  let count_tasks items =
    List.fold_left
      (fun n -> function Subtree _ -> n + 1 | Settled _ -> n)
      0 items
  in
  let rec grow items n_tasks rounds =
    if n_tasks = 0 || n_tasks >= target || rounds >= 64 then items
    else begin
      let count = ref n_tasks in
      let rec step = function
        | [] -> []
        | (Settled _ as s) :: rest -> s :: step rest
        | (Subtree t as st) :: rest ->
            if !count >= target then st :: rest
            else begin
              let children = expand cfg t in
              count := !count - 1 + count_tasks children;
              children @ step rest
            end
      in
      let items = step items in
      grow items !count (rounds + 1)
    end
  in
  grow
    [
      Subtree
        {
          prefix = Prefix.create ();
          depth = 0;
          last_unit = None;
          preemptions = 0;
          sleep = [];
        };
    ]
    1 0

let run_task cfg task =
  let acc = make_acc () in
  (try
     let inst = Prefix.replay ~mk:cfg.mk task.prefix in
     extend (make_ctx cfg acc) inst task.prefix task.depth task.last_unit
       task.preemptions task.sleep
   with Explore.Stop -> ());
  acc

let merge ~max_failures accs =
  let merged = make_acc () in
  List.iter
    (fun (a : acc) ->
      (* Every per-subtree accumulator is folded in full. The former code
         dropped whole accumulators once the run budget was reached, so
         with [--jobs N] a binding budget silently discarded the statistics
         (and recorded failures!) of entire explored subtrees. The global
         budget is enforced during the search by the shared run counter;
         the merge only has to report what was actually explored — which
         may slightly exceed [max_runs], exactly as the caller's domains
         did. When the budget does not bind, totals are exact and
         byte-identical to the sequential search. *)
      merged.runs <- merged.runs + a.runs;
      merged.truncated <- merged.truncated + a.truncated;
      merged.deadlocks <- merged.deadlocks + a.deadlocks;
      merged.pruned <- merged.pruned + a.pruned;
      merged.memo_hits <- merged.memo_hits + a.memo_hits;
      merged.sleep_skips <- merged.sleep_skips + a.sleep_skips;
      merged.peak_depth <- max merged.peak_depth a.peak_depth;
      List.iter
        (fun f ->
          if merged.failure_count < max_failures then begin
            merged.failures_rev <- f :: merged.failures_rev;
            merged.failure_count <- merged.failure_count + 1
          end)
        (List.rev a.failures_rev))
    accs;
  merged

type progress = {
  tasks_done : int;
  tasks_total : int;
  total_runs : int;
  domains : int;
}

let search ?(max_depth = 400) ?(max_runs = 200_000) ?(preemption_bound = None)
    ?(max_failures = 5) ?(memo = false) ?(por = false) ?(snapshots = true)
    ?jobs ?on_progress ?(progress_every = 4096) ~mk () =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Domain.recommended_domain_count ()
  in
  if jobs = 1 then
    Explore.search ~max_depth ~max_runs ~preemption_bound ~max_failures ~memo
      ~por ~snapshots
      ?on_progress:
        (Option.map
           (fun f (s : Explore.stats) ->
             f
               {
                 tasks_done = 0;
                 tasks_total = 1;
                 total_runs = s.Explore.runs;
                 domains = 1;
               })
           on_progress)
      ~progress_every ~mk ()
  else begin
    let total_runs = Atomic.make 0 in
    let tasks_done = Atomic.make 0 in
    let tasks_total = ref 0 in
    let progress_every = max 1 progress_every in
    (* Progress is observed only from the initial domain (the one that
       called [search]): the reporter callback is not required to be
       thread-safe. The counters it reads are global atomics, so the
       snapshot covers every domain's work, sampled at the granularity of
       the initial domain's own completed runs. *)
    let main_domain = Domain.self () in
    let on_run (a : acc) =
      a.runs <- a.runs + 1;
      let total = Atomic.fetch_and_add total_runs 1 + 1 in
      (match on_progress with
      | Some f
        when Domain.self () = main_domain && total mod progress_every = 0 ->
          f
            {
              tasks_done = Atomic.get tasks_done;
              tasks_total = !tasks_total;
              total_runs = total;
              domains = jobs;
            }
      | _ -> ());
      if total >= max_runs then raise Explore.Stop
    in
    let cfg =
      {
        mk = (if snapshots then recording_mk mk else mk);
        max_depth;
        preemption_bound;
        max_failures;
        memo = (if memo then Some (shared_memo ()) else None);
        on_run;
        por;
        snapshots;
      }
    in
    let items = build_frontier cfg ~target:(4 * jobs) in
    let tasks =
      Array.of_list
        (List.filter_map
           (function Subtree t -> Some t | Settled _ -> None)
           items)
    in
    let results = Array.make (Array.length tasks) None in
    tasks_total := Array.length tasks;
    (* The shared work queue: domains claim the next unclaimed subtree until
       none remain — the checker work-steals, like the queues it checks. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length tasks then begin
          results.(i) <- Some (run_task cfg tasks.(i));
          Atomic.incr tasks_done;
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (min (jobs - 1) (Array.length tasks)) (fun _ ->
          Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    (* Deterministic merge: walk the frontier in lexicographic order,
       substituting each subtree's explored result. *)
    let ordinal = ref 0 in
    let accs =
      List.map
        (function
          | Settled a -> a
          | Subtree _ ->
              let a = Option.get results.(!ordinal) in
              incr ordinal;
              a)
        items
    in
    stats_of_acc (merge ~max_failures accs)
  end
