(** Discrete-event performance model of a bounded-TSO multicore.

    Each simulated thread is a core with a cycle clock. Instruction classes
    have configurable costs; buffered stores drain to memory in the
    background, one every [drain_latency] cycles per core. A fence (or an
    atomic RMW) cannot execute until the issuing core's buffer has drained,
    so its cost is [base cost + remaining drain time] — exactly the stall the
    paper's fence-free algorithms eliminate. Events (instruction executions
    and drains) are processed in global time order, so a load observes
    precisely the stores that have drained by the time it executes.

    The engine requires the [Abstract] buffer model (the egress/coalescing
    quirk matters for correctness litmus tests, not for timing). *)

type cost_model = {
  load_cost : int;  (** L1-hit load *)
  store_cost : int;  (** issue into the store buffer *)
  rmw_cost : int;  (** CAS / fetch-add, once the buffer has drained *)
  fence_cost : int;  (** fence base cost, once the buffer has drained *)
  drain_latency : int;  (** cycles for one buffered store to reach memory *)
  pause_cost : int;  (** spin-loop pause hint *)
}

val default_costs : cost_model
(** Loads/stores 1 cycle, RMW 24, fence base 24, drain 16, pause 4 — in the
    ballpark of published x86 figures; the harness's machine configs refine
    these per simulated CPU. *)

type thread_stats = {
  finish_time : int;  (** cycle at which the thread completed *)
  instructions : int;
  loads : int;
  stores : int;
  rmws : int;
  fences : int;
  fence_stall : int;  (** cycles spent waiting for drains before fences/RMWs *)
  work_cycles : int;  (** cycles of client [work] executed *)
}

type report = {
  makespan : int;  (** max finish time over all threads *)
  outcome : Sched.outcome;
  steps : int;
  threads : thread_stats array;
}

type clock
(** A run's simulated "now". Formerly a module-global ref, which made any
    two concurrent timed runs corrupt each other's time; each run now owns
    (or is handed) its clock, so {!run} is safe to call from several
    domains at once. *)

val clock : unit -> clock
(** A fresh clock at time 0. *)

val now : clock -> int
(** The simulated time the clock has reached. Host-level code embedded in
    thread programs may read the clock it passed to {!run} to timestamp
    events (e.g. the runtime's metrics). *)

val run :
  ?max_steps:int ->
  ?clock:clock ->
  ?sink:Telemetry.Sink.t ->
  ?shards:Telemetry.Shards.t ->
  ?tracer:Telemetry.Chrome_trace.t ->
  ?trace_pid:int ->
  Machine.t ->
  cost_model ->
  report
(** Drive a machine (with all threads spawned) to quiescence under the
    timing model. Deterministic: ties are broken by (kind, thread id).
    [clock] defaults to a fresh private clock; pass one explicitly when
    thread programs need to observe simulated time mid-run.

    [sink], if given, is attached to the machine (so its per-instruction
    counters fill in) and additionally receives the stall attribution only
    the timing engine can compute: [fence_stall_cycles] (drain waits before
    fences/RMWs) and [drain_stall_cycles] (stores waiting on a full
    buffer). [shards] (with [sink]) attaches the sharded counter plane
    instead: each simulated thread accumulates into shard [tid mod n],
    stall attribution lands in the stalled thread's shard, and the run's
    end is the quiescence point where the shards are batch-merged into
    [sink] — totals byte-identical to an unsharded run, with no shared
    counter writes while the run executes. [tracer] records a Chrome trace
    of the run — one span per
    instruction on its simulated core's track, "fence-stall" spans for the
    drain waits, async "sb-store" intervals for each store's residency in
    the store buffer, and an "sb-entries" counter track. [trace_pid]
    (default 0) labels the process id of every traced event, letting a
    harness overlay several runs in one trace. Neither option costs
    anything when omitted. *)
