type t = {
  mutable cells : int array;
  mutable names : string array;
  mutable used : int;
}

let create () = { cells = Array.make 64 0; names = Array.make 64 ""; used = 0 }

let ensure_capacity t n =
  if n > Array.length t.cells then begin
    let cap = max n (2 * Array.length t.cells) in
    let cells = Array.make cap 0 in
    Array.blit t.cells 0 cells 0 t.used;
    let names = Array.make cap "" in
    Array.blit t.names 0 names 0 t.used;
    t.cells <- cells;
    t.names <- names
  end

let alloc t ~name ~init =
  ensure_capacity t (t.used + 1);
  let a = t.used in
  t.cells.(a) <- init;
  t.names.(a) <- name;
  t.used <- t.used + 1;
  Addr.of_index a

let alloc_array t ~name ~len ~init =
  assert (len > 0);
  ensure_capacity t (t.used + len);
  let base = t.used in
  for i = 0 to len - 1 do
    t.cells.(base + i) <- init;
    t.names.(base + i) <- Printf.sprintf "%s[%d]" name i
  done;
  t.used <- t.used + len;
  Addr.of_index base

let check t a =
  let i = Addr.to_index a in
  if i < 0 || i >= t.used then
    invalid_arg (Printf.sprintf "Memory: address %d out of bounds (size %d)" i t.used);
  i

let get t a = t.cells.(check t a)
let set t a v = t.cells.(check t a) <- v
let size t = t.used
let name t a = t.names.(check t a)
let snapshot t = Array.sub t.cells 0 t.used

let blit_to t dst =
  if Array.length dst < t.used then
    invalid_arg "Memory.blit_to: destination too small";
  Array.blit t.cells 0 dst 0 t.used

let restore_from t src ~len =
  if len <> t.used then invalid_arg "Memory.restore_from: size mismatch";
  Array.blit src 0 t.cells 0 len

let cell t i =
  if i < 0 || i >= t.used then invalid_arg "Memory.cell: index out of bounds";
  t.cells.(i)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to t.used - 1 do
    Format.fprintf ppf "%s = %d@," t.names.(i) t.cells.(i)
  done;
  Format.fprintf ppf "@]"
