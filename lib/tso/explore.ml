type instance = {
  machine : Machine.t;
  check : unit -> (unit, string) result;
}

type stats = {
  runs : int;
  truncated : int;
  deadlocks : int;
  pruned : int;
  memo_hits : int;
  sleep_skips : int;
  peak_depth : int;
  covered : float;
  failures : (int list * string) list;
}

(* [stats_of_acc] already reverses both the failure list (sighting order)
   and, via [Prefix.to_list], leaves each choice sequence root-first, so
   the replay orientation is the stored one. *)
let failures_in_replay_order s = s.failures

let memo_hit_rate s =
  let visits = s.runs + s.memo_hits in
  if visits = 0 then 0.0 else float_of_int s.memo_hits /. float_of_int visits

(* The unit performing a transition, for preemption accounting. Drains and
   flushes belong to the memory subsystem and never count as preemptions. *)
type unit_id = U_thread of int | U_memory

let unit_of = function
  | Machine.Step t -> U_thread t
  | Machine.Drain _ | Machine.Flush _ -> U_memory

exception Stop

(* Partial-order reduction for busy-wait loops: a pause/label step is a pure
   no-op that commutes with every other transition, so exploring it is only
   useful once nothing else can move. Without this, a spinlock's
   cas-fail/pause cycle revisits the same machine state forever. The reduced
   list is the choice universe for BOTH search and replay, so recorded
   indices stay meaningful. *)
let is_noop m = function
  | Machine.Step t -> (
      match Machine.pending_class m t with
      | Some Machine.C_free -> true
      | _ -> false)
  | Machine.Drain _ | Machine.Flush _ -> false

let choices m =
  let ts = Machine.enabled m in
  match List.filter (fun t -> not (is_noop m t)) ts with
  | [] -> ts
  | productive -> productive

(* Same reduction over a reusable buffer: refill it with the enabled set,
   then compact out the no-ops in place (keeping order) unless everything is
   a no-op. This is the search's per-node choice computation, so it must
   yield exactly the same sequence as [choices]. *)
let choices_into m buf =
  let n = Machine.enabled_into m buf in
  let productive = ref 0 in
  for i = 0 to n - 1 do
    if not (is_noop m (Machine.tbuf_get buf i)) then incr productive
  done;
  if !productive = 0 || !productive = n then n
  else begin
    let j = ref 0 in
    for i = 0 to n - 1 do
      let tr = Machine.tbuf_get buf i in
      if not (is_noop m tr) then begin
        Machine.tbuf_set buf !j tr;
        incr j
      end
    done;
    Machine.tbuf_truncate buf !j;
    !j
  end

(* FNV-style mixing, as in {!Machine.fingerprint}; used to fold a sleep
   set into the memoization key. *)
let fnv_prime = 0x100000001b3
let[@inline] mix h k = (h lxor k) * fnv_prime

(* {2 Sleep sets}

   Sleep-set partial-order reduction (Godefroid). After a branch node's
   child [tr] has been fully explored, every execution from a later sibling
   that schedules only transitions independent of [tr] before eventually
   firing [tr] is a commuted copy of one already explored under [tr] — so
   [tr] is put to sleep for the later siblings and skipped wherever it
   stays asleep. A sleeping transition wakes (is dropped) as soon as a
   dependent transition fires; since any transition of the same thread is
   dependent, a sleeping transition's footprint (taken when it went to
   sleep) stays valid for as long as it sleeps.

   Interaction with the bounds (DESIGN.md §10):
   - the depth bound is commutation-invariant (reordering preserves length),
     so truncated subtrees still justify sleep insertion;
   - the preemption count is NOT commutation-invariant, so under a CHESS
     bound a sibling only enters the sleep set if its subtree was explored
     without a single preemption prune or memo hit (a memo hit hides
     whether the earlier visit pruned) — otherwise some execution the
     sleeping transition is supposed to cover may have been cut;
   - with memoization, the sleep set is folded into the cache key, so a
     state is only pruned against a previous visit that had the same
     reductions applied. *)
type sleep_entry = { sl_tr : Machine.transition; sl_fp : Machine.footprint }

let sleep_mem sleep tr = List.exists (fun e -> e.sl_tr = tr) sleep
let sleep_filter sleep fp =
  List.filter (fun e -> Machine.independent e.sl_fp fp) sleep

let tr_hash = function
  | Machine.Step t -> mix 0x57 t
  | Machine.Drain (t, l) -> mix (mix 0xD5 t) l
  | Machine.Flush t -> mix 0xF1 t

(* Order-independent (xor-folded): a sleep set is a set. *)
let sleep_hash sleep =
  List.fold_left (fun h e -> h lxor tr_hash e.sl_tr) 0 sleep

(* {2 Source-DPOR}

   Dynamic partial-order reduction (Flanagan-Godefroid, with the source-set
   refinement): instead of enumerating every child of a branch node, start
   from ONE choice and let the execution itself demand the others. While an
   event executes, it is checked against the last accesses to the addresses
   it touches; each such earlier access by a different thread that is not
   already ordered before it by happens-before is a reversible race, and the
   reversal is requested by planting a backtrack point at the branch node
   where the earlier access was chosen. A node therefore only explores the
   choices some observed race demanded — on programs whose threads touch
   disjoint data this collapses the tree to a single interleaving.

   The happens-before relation is tracked with per-thread vector clocks over
   the footprint relation ({!Machine.footprint} / {!Machine.independent}).
   Footprints already encode the store-buffer split: a [Step] of a store
   touches no shared address (it only fills the private buffer) while the
   matching [Drain]/[Flush] carries the write — so a buffered store races
   with a concurrent load only when its drain does, exactly the TSO-aware
   independence the reduction needs. A thread and its buffer share one
   clock index: footprints of the same thread are always dependent
   (program order / FIFO order), matching [Machine.independent].

   Two sources of internal nondeterminism make this coarser than textbook
   DPOR over thread ids alone, and both are handled by treating "all
   choices of a unit at a node" as one schedulable entity: a thread may
   offer [Step]/[Drain]/[Flush] alternatives at the same node (which of
   them runs is not resolved by scheduling the thread), so the initial
   selection and every planted backtrack point take ALL of the unit's
   choice indices together.

   Composition (the same discipline as sleep sets, DESIGN.md §13):
   - a subtree cut by the CHESS bound or pruned by a memo hit may hide the
     race that would have demanded a sibling, so an unclean child degrades
     its node to full enumeration ([nd_all]) — under a preemption bound or
     memoization the reduction is best-effort but the bounded verdict is
     preserved;
   - sleep sets compose unchanged: a demanded-but-sleeping choice is a
     commuted copy of an explored one and is skipped with the usual
     accounting, and explored children enter the running sleep set under
     the usual clean-subtree rule. *)

type dpor_node = {
  nd_units : int array;  (** footprint thread of each choice index *)
  nd_backtrack : bool array;
  nd_done : bool array;
  mutable nd_all : bool;
      (** degraded to full enumeration (bound prune / memo hit below, or no
          backtrack-set member was available for a demanded reversal) *)
}

(* Per-address access summary: the last write (its event index and clock)
   and the reads since it (their indices and joined clock). Records are
   immutable so backtracking restores by keeping the old record. *)
type dpor_addr = {
  a_widx : int;
  a_wclock : int array;
  a_reads : int list;
  a_rclock : int array;
}

type dpor_undo = {
  u_proc : int;
  u_pclock : int array;
  u_read : (int * dpor_addr) option;
  u_write : (int * dpor_addr) option;
}

type dpor = {
  d_bottom : int array;  (** all -1; shared and never mutated *)
  d_pclock : int array array;  (** clock of each thread's last event *)
  d_addrs : (int, dpor_addr) Hashtbl.t;
  mutable d_units : int array;  (** executing thread of the event at depth *)
  mutable d_nodes : dpor_node option array;  (** branch node at depth *)
  mutable d_undo : dpor_undo option array;
}

let dpor_create ~nthreads =
  let n = max nthreads 1 in
  let bottom = Array.make n (-1) in
  {
    d_bottom = bottom;
    d_pclock = Array.make n bottom;
    d_addrs = Hashtbl.create 64;
    d_units = [||];
    d_nodes = [||];
    d_undo = [||];
  }

let dpor_depth_room ds depth =
  let n = Array.length ds.d_units in
  if depth >= n then begin
    let m = max (depth + 1) (max 16 (2 * n)) in
    let units = Array.make m (-1) in
    Array.blit ds.d_units 0 units 0 n;
    ds.d_units <- units;
    let nodes = Array.make m None in
    Array.blit ds.d_nodes 0 nodes 0 n;
    ds.d_nodes <- nodes;
    let undo = Array.make m None in
    Array.blit ds.d_undo 0 undo 0 n;
    ds.d_undo <- undo
  end

let dpor_addr ds a =
  match Hashtbl.find_opt ds.d_addrs a with
  | Some e -> e
  | None ->
      { a_widx = -1; a_wclock = ds.d_bottom; a_reads = []; a_rclock = ds.d_bottom }

let[@inline] dpor_join dst src =
  for i = 0 to Array.length dst - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

(* Request the reversal of a race between the event at branch node [i] and
   the event thread [p] is about to execute ([pc] = p's clock BEFORE it).
   E is the set of threads with a choice at [i] that either are [p] or ran
   an event after [i] that happens-before p's event (any of them reaches
   the race from node [i]); if a member of E is already scheduled there,
   nothing is needed; else one member's choices are planted (all of its
   indices — internal nondeterminism); else nothing in the node's choice
   universe can reach the race and the node degrades to full enumeration. *)
let dpor_plant ds i ~p ~pc =
  match ds.d_nodes.(i) with
  | None -> () (* singleton node: its only choice already runs *)
  | Some node ->
      if not node.nd_all then begin
        let n = Array.length node.nd_units in
        let in_e q = q = p || pc.(q) > i in
        let covered = ref false in
        for j = 0 to n - 1 do
          if
            (node.nd_backtrack.(j) || node.nd_done.(j))
            && in_e node.nd_units.(j)
          then covered := true
        done;
        if not !covered then begin
          let chosen = ref (-1) in
          for j = n - 1 downto 0 do
            let q = node.nd_units.(j) in
            if q = p || (!chosen < 0 && in_e q) then chosen := q
          done;
          if !chosen >= 0 then begin
            let c = !chosen in
            Array.iteri
              (fun j q -> if q = c then node.nd_backtrack.(j) <- true)
              node.nd_units
          end
          else node.nd_all <- true
        end
      end

(* Record the event at [depth] with footprint [fp]: detect races against
   the per-address indices (planting reversals), advance the executing
   thread's clock, and update the address records — remembering enough to
   undo on backtrack. Must run on the pre-state footprint, before
   [Machine.apply]. *)
let dpor_push ds depth fp =
  dpor_depth_room ds depth;
  let p = Machine.footprint_tid fp in
  let r = Machine.footprint_read fp and w = Machine.footprint_write fp in
  let pc = ds.d_pclock.(p) in
  let plant i =
    if i >= 0 && ds.d_units.(i) <> p && pc.(ds.d_units.(i)) < i then
      dpor_plant ds i ~p ~pc
  in
  let er = if r >= 0 then Some (dpor_addr ds r) else None in
  let ew = if w >= 0 then Some (dpor_addr ds w) else None in
  (match er with Some e -> plant e.a_widx | None -> ());
  (match ew with
  | Some e ->
      if w <> r then plant e.a_widx;
      List.iter plant e.a_reads
  | None -> ());
  let c = Array.copy pc in
  c.(p) <- depth;
  (match er with Some e -> dpor_join c e.a_wclock | None -> ());
  (match ew with
  | Some e ->
      dpor_join c e.a_wclock;
      dpor_join c e.a_rclock
  | None -> ());
  let u_read =
    match er with
    | Some e when r <> w ->
        let rc = Array.copy e.a_rclock in
        dpor_join rc c;
        Hashtbl.replace ds.d_addrs r
          { e with a_reads = depth :: e.a_reads; a_rclock = rc };
        Some (r, e)
    | _ -> None
  in
  let u_write =
    match ew with
    | Some e ->
        Hashtbl.replace ds.d_addrs w
          { a_widx = depth; a_wclock = c; a_reads = []; a_rclock = ds.d_bottom };
        Some (w, e)
    | None -> None
  in
  ds.d_undo.(depth) <- Some { u_proc = p; u_pclock = pc; u_read; u_write };
  ds.d_units.(depth) <- p;
  ds.d_pclock.(p) <- c

let dpor_pop ds depth =
  match ds.d_undo.(depth) with
  | None -> ()
  | Some u ->
      ds.d_undo.(depth) <- None;
      ds.d_pclock.(u.u_proc) <- u.u_pclock;
      (match u.u_read with
      | Some (a, e) -> Hashtbl.replace ds.d_addrs a e
      | None -> ());
      (match u.u_write with
      | Some (a, e) -> Hashtbl.replace ds.d_addrs a e
      | None -> ())

(* One enabled-set buffer per search depth, grown on demand: the DFS at
   depth [d] iterates its siblings from buffer [d] while the recursion
   below uses deeper buffers, so no buffer is ever clobbered while live. *)
type pool = { mutable bufs : Machine.tbuf array }

let pool_create () = { bufs = [||] }

let pool_get pool depth =
  let n = Array.length pool.bufs in
  if depth >= n then begin
    let grown = Array.make (max (depth + 1) (max 16 (2 * n))) (Machine.tbuf_create ()) in
    Array.blit pool.bufs 0 grown 0 n;
    for i = n to Array.length grown - 1 do
      grown.(i) <- Machine.tbuf_create ()
    done;
    pool.bufs <- grown
  end;
  pool.bufs.(depth)

(* Likewise one machine snapshot per branch depth: the scratch stays live
   while the node iterates its siblings, and deeper branch nodes use deeper
   slots. Reusing the slots means steady-state capture allocates nothing. *)
type spool = { mutable snaps : Machine.snapshot array }

let spool_create () = { snaps = [||] }

let spool_get spool depth =
  let n = Array.length spool.snaps in
  if depth >= n then begin
    let grown =
      Array.make (max (depth + 1) (max 16 (2 * n))) (Machine.snapshot_create ())
    in
    Array.blit spool.snaps 0 grown 0 n;
    for i = n to Array.length grown - 1 do
      grown.(i) <- Machine.snapshot_create ()
    done;
    spool.snaps <- grown
  end;
  spool.snaps.(depth)

(* Growable array-backed choice prefix. Alongside each choice index we keep
   the chosen transition itself: transitions are plain values (thread ids
   and lane numbers), so a sibling replay can re-apply them directly instead
   of recomputing the choice universe at every step — replay is one
   [Machine.apply] per step, O(depth) total where the list-based
   representation cost O(depth^2). *)
module Prefix = struct
  type t = {
    mutable idx : int array;
    mutable trs : Machine.transition array;
    mutable len : int;
  }

  let dummy = Machine.Step (-1)
  let create () = { idx = Array.make 64 0; trs = Array.make 64 dummy; len = 0 }

  let copy p =
    { idx = Array.copy p.idx; trs = Array.copy p.trs; len = p.len }

  let length p = p.len

  let push p i tr =
    let n = p.len in
    if n = Array.length p.idx then begin
      let idx = Array.make (2 * n) 0 in
      let trs = Array.make (2 * n) dummy in
      Array.blit p.idx 0 idx 0 n;
      Array.blit p.trs 0 trs 0 n;
      p.idx <- idx;
      p.trs <- trs
    end;
    p.idx.(n) <- i;
    p.trs.(n) <- tr;
    p.len <- n + 1

  let pop p =
    assert (p.len > 0);
    p.len <- p.len - 1

  let to_list p = Array.to_list (Array.sub p.idx 0 p.len)

  (* Incremental replay: re-apply the recorded transitions on a fresh
     instance. The path was valid when recorded and the machine is
     deterministic, so no enabledness recomputation is needed. *)
  let replay ~mk p =
    let inst = mk () in
    for k = 0 to p.len - 1 do
      Machine.apply inst.machine p.trs.(k)
    done;
    inst
end

(* Mutable per-search accumulators. Failures are prepended (newest first)
   and reversed once at the end, fixing the former O(n^2)
   [failures := !failures @ [...]] pattern. *)
type acc = {
  mutable runs : int;
  mutable truncated : int;
  mutable deadlocks : int;
  mutable pruned : int;
  mutable memo_hits : int;
  mutable sleep_skips : int;
  mutable peak_depth : int;
  mutable covered : float;
  mutable failures_rev : (int list * string) list;
  mutable failure_count : int;
}

let make_acc () =
  {
    runs = 0;
    truncated = 0;
    deadlocks = 0;
    pruned = 0;
    memo_hits = 0;
    sleep_skips = 0;
    peak_depth = 0;
    covered = 0.0;
    failures_rev = [];
    failure_count = 0;
  }

let stats_of_acc a =
  {
    runs = a.runs;
    truncated = a.truncated;
    deadlocks = a.deadlocks;
    pruned = a.pruned;
    memo_hits = a.memo_hits;
    sleep_skips = a.sleep_skips;
    peak_depth = a.peak_depth;
    covered = min 1.0 a.covered;
    failures = List.rev a.failures_rev;
  }

(* Visited-state cache. Pruning a revisit is only sound if the earlier
   exploration of the state had at least as much remaining budget (depth and
   preemptions), so each fingerprint maps to the Pareto frontier of
   (depth remaining, preemptions remaining) pairs already explored. With the
   default unbounded settings the frontier is a single entry and this
   degenerates to a plain visited set. The cache is abstracted as a closure
   so {!Explore_par} can substitute a sharded, lock-protected table shared
   across domains. *)
type memo = { seen : int -> depth_rem:int -> preempt_rem:int -> bool }

(* The frontier rule itself lives in {!Memo_store} so the persistent store
   and the in-memory table cannot drift. *)
let memo_tbl_check = Memo_store.tbl_check

let memo_create () =
  let tbl : (int, (int * int) list) Hashtbl.t = Hashtbl.create 4096 in
  { seen = (fun fp ~depth_rem ~preempt_rem -> memo_tbl_check tbl fp ~depth_rem ~preempt_rem) }

type ctx = {
  mk : unit -> instance;
  max_depth : int;
  preemption_bound : int option;
  max_failures : int;
  memo : memo option;
  acc : acc;
  on_run : acc -> unit;  (** called once per completed run; may raise {!Stop} *)
  pool : pool;  (** per-depth enabled-set buffers for the in-place DFS *)
  por : bool;  (** sleep-set partial-order reduction *)
  dpor : dpor option;
      (** source-DPOR state; implies [por] (sleep sets stay composed) *)
  use_snapshots : bool;
      (** sibling exploration by snapshot/restore; [false] falls back to
          prefix replay (the differential oracle) *)
  spool : spool;  (** per-depth snapshot scratch *)
  mutable mass : float;
      (** Knuth-style tree-mass register: the probability mass of the
          subtree [extend] is about to enter. The root carries 1.0; an
          n-ary branch splits its mass evenly among its children. Every
          way a subtree is disposed of without recursing — leaf, deadlock,
          depth truncation, memo hit, sleep skip, bound prune, DPOR
          never-demanded sibling — credits its mass to [acc.covered], so
          covered sums to exactly 1.0 over a completed search and the
          covered fraction of an interrupted one estimates the fraction of
          the tree explored (and [runs /. covered] its total size). The
          caller sets this field immediately before each [extend] call;
          [extend] reads it once on entry. *)
}

(* Account a disposed-of subtree's mass as covered. *)
let credit ctx mass = ctx.acc.covered <- ctx.acc.covered +. mass

let sleep_skip ctx m =
  ctx.acc.sleep_skips <- ctx.acc.sleep_skips + 1;
  match Machine.sink m with
  | None -> ()
  | Some s ->
      s.Telemetry.Sink.por_sleep_skips <- s.Telemetry.Sink.por_sleep_skips + 1

let fail ctx prefix msg =
  if ctx.acc.failure_count < ctx.max_failures then begin
    ctx.acc.failures_rev <- (Prefix.to_list prefix, msg) :: ctx.acc.failures_rev;
    ctx.acc.failure_count <- ctx.acc.failure_count + 1
  end

let preemption_cost ~last_unit ~choices:ts tr =
  match (last_unit, unit_of tr) with
  | Some (U_thread a), U_thread b when a <> b ->
      if List.exists (fun t -> unit_of t = U_thread a) ts then 1 else 0
  | _ -> 0

(* The same CHESS accounting over the buffer the choices live in. *)
let preemption_cost_buf ~last_unit buf tr =
  match (last_unit, unit_of tr) with
  | Some (U_thread a), U_thread b when a <> b ->
      let n = Machine.tbuf_length buf in
      let rec still_enabled i =
        i < n
        && ((match Machine.tbuf_get buf i with
            | Machine.Step t -> t = a
            | Machine.Drain _ | Machine.Flush _ -> false)
           || still_enabled (i + 1))
      in
      if still_enabled 0 then 1 else 0
  | _ -> 0

(* Continue a run in-place from the current machine state. [prefix] holds
   the choices that reached this state; [last_unit]/[preemptions] summarise
   the prefix for the CHESS bound; [sleep] is the sleep set this node
   inherited (always [[]] unless [ctx.por]). Siblings of the choices made
   here are explored on a fresh instance — restored from a snapshot of this
   node when [ctx.use_snapshots], replayed from the root otherwise. On
   return the prefix is restored to its entry length. *)
let rec extend ctx inst prefix depth last_unit preemptions sleep =
  let m = inst.machine in
  (* This node's subtree mass, staged by the caller (1.0 at the root). The
     register is clobbered by deeper recursion, so it is read exactly once,
     here. *)
  let mass = ctx.mass in
  if depth > ctx.acc.peak_depth then ctx.acc.peak_depth <- depth;
  let memo_hit =
    match ctx.memo with
    | None -> false
    | Some memo ->
        let preempt_rem =
          match ctx.preemption_bound with
          | None -> max_int
          | Some b -> b - preemptions
        in
        let key =
          let fp = Machine.fingerprint m in
          (* The sleep set is part of the key: a visit with a different
             sleep set explores a different reduced subtree. *)
          if ctx.por then mix fp (sleep_hash sleep) else fp
        in
        memo.seen key ~depth_rem:(ctx.max_depth - depth) ~preempt_rem
  in
  if memo_hit then begin
    ctx.acc.memo_hits <- ctx.acc.memo_hits + 1;
    credit ctx mass
  end
  else begin
    (* Depth [depth]'s buffer stays live while this node iterates its
       children; the recursion below only touches deeper buffers. *)
    let buf = pool_get ctx.pool depth in
    let n = choices_into m buf in
    if n = 0 then begin
      credit ctx mass;
      if Machine.quiescent m then begin
        (match inst.check () with
        | Ok () -> ()
        | Error msg -> fail ctx prefix msg);
        ctx.on_run ctx.acc
      end
      else begin
        ctx.acc.deadlocks <- ctx.acc.deadlocks + 1;
        fail ctx prefix "deadlock";
        ctx.on_run ctx.acc
      end
    end
    else if depth >= ctx.max_depth then begin
      credit ctx mass;
      ctx.acc.truncated <- ctx.acc.truncated + 1;
      ctx.on_run ctx.acc
    end
    else if n = 1 then begin
      let tr = Machine.tbuf_get buf 0 in
      if ctx.por && sleep_mem sleep tr then begin
        (* The whole continuation is a commuted copy of an explored one:
           backtrack without completing (or counting) a run — this silent
           cut is where the run reduction comes from. *)
        credit ctx mass;
        sleep_skip ctx m
      end
      else begin
        let fp_opt =
          if ctx.dpor <> None || (ctx.por && sleep <> []) then
            Some (Machine.footprint m tr)
          else None
        in
        let sleep' =
          match fp_opt with
          | Some fp when sleep <> [] -> sleep_filter sleep fp
          | _ -> sleep
        in
        (match (ctx.dpor, fp_opt) with
        | Some ds, Some fp ->
            (* A forced step still participates in race detection and
               happens-before; the node itself offers no reversal. *)
            dpor_depth_room ds depth;
            ds.d_nodes.(depth) <- None;
            dpor_push ds depth fp
        | _ -> ());
        Machine.apply m tr;
        let last_unit =
          (* memory-subsystem transitions do not change whose turn it is *)
          match unit_of tr with U_memory -> last_unit | u -> Some u
        in
        Prefix.push prefix 0 tr;
        ctx.mass <- mass;
        extend ctx inst prefix (depth + 1) last_unit preemptions sleep';
        Prefix.pop prefix;
        match ctx.dpor with Some ds -> dpor_pop ds depth | None -> ()
      end
    end
    else begin
      let within cost =
        match ctx.preemption_bound with
        | None -> true
        | Some b -> preemptions + cost <= b
      in
      (* Knuth split: each of the n children carries an equal share of this
         node's mass, however it is disposed of (explored, slept, pruned,
         or never demanded). *)
      let cmass = mass /. float_of_int n in
      (* Footprints are a function of the machine state at this node (a
         drain's target address is the current buffer head), so they are
         taken for every child before child 0 advances the machine. *)
      let fps =
        if ctx.por then
          Array.init n (fun i -> Machine.footprint m (Machine.tbuf_get buf i))
        else [||]
      in
      (* Capture this node's state once, before child 0 mutates it — but
         only if some sibling (i > 0) will actually be explored. Additions
         to the sleep set during the loop only remove that need. *)
      let snap =
        if not ctx.use_snapshots then None
        else begin
          let need = ref false in
          (if ctx.dpor <> None then begin
             (* Which siblings will be demanded is only known as races are
                sighted; capture whenever more than one child could run. *)
             let awake = ref 0 in
             for i = 0 to n - 1 do
               if not (sleep_mem sleep (Machine.tbuf_get buf i)) then
                 incr awake
             done;
             need := !awake > 1
           end
           else begin
             let i = ref 1 in
             while (not !need) && !i < n do
               let tr = Machine.tbuf_get buf !i in
               if
                 (not (ctx.por && sleep_mem sleep tr))
                 && within (preemption_cost_buf ~last_unit buf tr)
               then need := true;
               incr i
             done
           end);
          if !need then begin
            let s = spool_get ctx.spool depth in
            Machine.snapshot m s;
            Some s
          end
          else None
        end
      in
      match ctx.dpor with
      | Some ds ->
          (* Source-DPOR node: explore one unit's choices, then whatever
             the races observed below demand. The first explored child
             advances [m] in place; later demanded children restore. *)
          dpor_depth_room ds depth;
          let node =
            {
              nd_units = Array.map Machine.footprint_tid fps;
              nd_backtrack = Array.make n false;
              nd_done = Array.make n false;
              nd_all = false;
            }
          in
          ds.d_nodes.(depth) <- Some node;
          let init = ref (-1) in
          for i = n - 1 downto 0 do
            if not (sleep_mem sleep (Machine.tbuf_get buf i)) then init := i
          done;
          (if !init < 0 then
             (* every choice is a commuted copy of an explored execution *)
             for _ = 1 to n do
               credit ctx cmass;
               sleep_skip ctx m
             done
           else begin
             let u0 = node.nd_units.(!init) in
             Array.iteri
               (fun j q -> if q = u0 then node.nd_backtrack.(j) <- true)
               node.nd_units;
             let sleep_now = ref sleep in
             let in_place = ref false in
             let running = ref true in
             while !running do
               let next = ref (-1) in
               let j = ref 0 in
               while !next < 0 && !j < n do
                 if
                   (not node.nd_done.(!j))
                   && (node.nd_all || node.nd_backtrack.(!j))
                 then next := !j;
                 incr j
               done;
               if !next < 0 then running := false
               else begin
                 let i = !next in
                 node.nd_done.(i) <- true;
                 let tr = Machine.tbuf_get buf i in
                 if sleep_mem !sleep_now tr then begin
                   credit ctx cmass;
                   sleep_skip ctx m
                 end
                 else begin
                   let cost = preemption_cost_buf ~last_unit buf tr in
                   if not (within cost) then begin
                     credit ctx cmass;
                     ctx.acc.pruned <- ctx.acc.pruned + 1;
                     (* the bound cut a demanded child; races below it are
                        unknown, so enumerate as the bounded search does *)
                     node.nd_all <- true
                   end
                   else begin
                     let child_sleep = sleep_filter !sleep_now fps.(i) in
                     let pruned0 = ctx.acc.pruned
                     and memo0 = ctx.acc.memo_hits in
                     Prefix.push prefix i tr;
                     dpor_push ds depth fps.(i);
                     let inst' =
                       if not !in_place then begin
                         in_place := true;
                         Machine.apply m tr;
                         inst
                       end
                       else
                         match snap with
                         | Some s ->
                             let inst' = ctx.mk () in
                             Machine.restore_into s inst'.machine;
                             Machine.apply inst'.machine tr;
                             inst'
                         | None -> Prefix.replay ~mk:ctx.mk prefix
                     in
                     let last_unit' =
                       match unit_of tr with
                       | U_memory -> last_unit
                       | u -> Some u
                     in
                     ctx.mass <- cmass;
                     extend ctx inst' prefix (depth + 1) last_unit'
                       (preemptions + cost) child_sleep;
                     Prefix.pop prefix;
                     dpor_pop ds depth;
                     let clean =
                       ctx.acc.pruned = pruned0 && ctx.acc.memo_hits = memo0
                     in
                     (* sleep insertion follows the usual clean-subtree
                        rule; unlike sleep sets alone, a memoized subtree
                        also degrades the node — the cached visit may have
                        sighted races this path never replays. *)
                     if
                       match ctx.preemption_bound with
                       | None -> true
                       | Some _ -> clean
                     then
                       sleep_now :=
                         { sl_tr = tr; sl_fp = fps.(i) } :: !sleep_now;
                     if not clean then node.nd_all <- true
                   end
                 end
               end
             done;
             (* Siblings no race ever demanded are covered by the source-set
                reduction — their subtrees are commuted copies of explored
                ones. Credit their share so [covered] still sums to 1. *)
             for j = 0 to n - 1 do
               if not node.nd_done.(j) then credit ctx cmass
             done
           end);
          ds.d_nodes.(depth) <- None
      | None ->
          (* Child 0 is explored in-place; siblings restore (or replay).
             As children complete, they enter the running sleep set for
             their later siblings (subject to the CHESS-bound rule
             above). *)
          let sleep_now = ref sleep in
          for i = 0 to n - 1 do
            let tr = Machine.tbuf_get buf i in
            if ctx.por && sleep_mem !sleep_now tr then begin
              credit ctx cmass;
              sleep_skip ctx m
            end
            else begin
              let cost = preemption_cost_buf ~last_unit buf tr in
              if not (within cost) then begin
                credit ctx cmass;
                ctx.acc.pruned <- ctx.acc.pruned + 1
              end
              else begin
                let child_sleep =
                  if ctx.por then sleep_filter !sleep_now fps.(i) else []
                in
                let pruned0 = ctx.acc.pruned and memo0 = ctx.acc.memo_hits in
                Prefix.push prefix i tr;
                let inst' =
                  if i = 0 then begin
                    Machine.apply m tr;
                    inst
                  end
                  else
                    match snap with
                    | Some s ->
                        let inst' = ctx.mk () in
                        Machine.restore_into s inst'.machine;
                        Machine.apply inst'.machine tr;
                        inst'
                    | None -> Prefix.replay ~mk:ctx.mk prefix
                in
                let last_unit' =
                  match unit_of tr with U_memory -> last_unit | u -> Some u
                in
                ctx.mass <- cmass;
                extend ctx inst' prefix (depth + 1) last_unit'
                  (preemptions + cost) child_sleep;
                Prefix.pop prefix;
                if ctx.por then begin
                  let clean =
                    match ctx.preemption_bound with
                    | None -> true
                    | Some _ ->
                        ctx.acc.pruned = pruned0 && ctx.acc.memo_hits = memo0
                  in
                  if clean then
                    sleep_now := { sl_tr = tr; sl_fp = fps.(i) } :: !sleep_now
                end
              end
            end
          done
    end
  end

(* Every instance the snapshot-based search touches must record responses
   from birth (root, restore targets, and oracle replays alike), so the
   wrapper is applied to [mk] itself. *)
let recording_mk mk () =
  let inst = mk () in
  Machine.set_record_responses inst.machine true;
  inst

let default_max_depth = 400

let search ?(max_depth = default_max_depth) ?(max_runs = 200_000)
    ?(preemption_bound = None) ?(max_failures = 5) ?(memo = false)
    ?(por = false) ?(dpor = false) ?memo_store ?(snapshots = true) ?on_progress
    ?(progress_every = 4096) ~mk () =
  let por = por || dpor in
  let mk = if snapshots then recording_mk mk else mk in
  let acc = make_acc () in
  let progress_every = max 1 progress_every in
  let memo_impl =
    match memo_store with
    | Some store ->
        Some
          {
            seen =
              (fun fp ~depth_rem ~preempt_rem ->
                Memo_store.seen store fp ~depth_rem ~preempt_rem);
          }
    | None -> if memo then Some (memo_create ()) else None
  in
  let root = mk () in
  let ctx =
    {
      mk;
      max_depth;
      preemption_bound;
      max_failures;
      memo = memo_impl;
      acc;
      on_run =
        (fun a ->
          a.runs <- a.runs + 1;
          (match on_progress with
          | Some f when a.runs mod progress_every = 0 -> f (stats_of_acc a)
          | _ -> ());
          if a.runs >= max_runs then raise Stop);
      pool = pool_create ();
      por;
      dpor =
        (if dpor then
           Some (dpor_create ~nthreads:(Machine.thread_count root.machine))
         else None);
      use_snapshots = snapshots;
      spool = spool_create ();
      mass = 1.0;
    }
  in
  let completed =
    try
      extend ctx root (Prefix.create ()) 0 None 0 [];
      true
    with Stop -> false
  in
  (* A completed search covered the whole tree by construction; snap the
     float accumulation to the exact answer. *)
  if completed then acc.covered <- 1.0;
  let st = stats_of_acc acc in
  match memo_store with
  | None -> st
  | Some store ->
      (* Warm runs may sight nothing live (everything memoized): the
         stored failure set keeps the verdict; only completed searches
         are merged back (a partial failure set is not the
         configuration's). *)
      let failures =
        Memo_store.merge_failures store ~max_failures st.failures
      in
      if completed then begin
        match Memo_store.commit store ~failures with
        | Ok () -> ()
        | Error e -> failwith ("memo store commit failed: " ^ e)
      end;
      { st with failures }

let next_choices = choices

let replay_choices ?(max_steps = max_int) ~mk steps =
  let inst = mk () in
  let m = inst.machine in
  (* One reusable buffer; [choices_into] yields exactly the sequence
     [choices] would, so recorded indices keep their meaning — but each
     step is O(enabled set) instead of the former List.nth/List.length
     O(n²)-over-the-run pattern. *)
  let buf = Machine.tbuf_create () in
  List.iter
    (fun i ->
      let n = choices_into m buf in
      if n = 0 then invalid_arg "Explore.replay_choices: run ended early";
      if i < 0 || i >= n then
        invalid_arg "Explore.replay_choices: bad choice index";
      Machine.apply m (Machine.tbuf_get buf i))
    steps;
  (* Drive any forced suffix to quiescence. The greedy always-transition-0
     policy can livelock from states only a truncated candidate reaches
     (spin loop on a never-scheduled peer), hence the budget. *)
  let rec finish budget =
    if Machine.enabled_into m buf > 0 then begin
      if budget = 0 then
        invalid_arg "Explore.replay_choices: suffix exceeded max_steps";
      Machine.apply m (Machine.tbuf_get buf 0);
      finish (budget - 1)
    end
  in
  finish max_steps;
  inst.check ()

module Internal = struct
  type nonrec acc = acc = {
    mutable runs : int;
    mutable truncated : int;
    mutable deadlocks : int;
    mutable pruned : int;
    mutable memo_hits : int;
    mutable sleep_skips : int;
    mutable peak_depth : int;
    mutable covered : float;
    mutable failures_rev : (int list * string) list;
    mutable failure_count : int;
  }

  let make_acc = make_acc
  let stats_of_acc = stats_of_acc

  module Prefix = Prefix

  type nonrec memo = memo = {
    seen : int -> depth_rem:int -> preempt_rem:int -> bool;
  }

  let memo_create = memo_create
  let memo_tbl_check = memo_tbl_check

  type nonrec pool = pool

  let pool_create = pool_create

  type nonrec spool = spool

  let spool_create = spool_create

  type nonrec sleep_entry = sleep_entry = {
    sl_tr : Machine.transition;
    sl_fp : Machine.footprint;
  }

  let sleep_mem = sleep_mem
  let sleep_filter = sleep_filter
  let sleep_hash = sleep_hash

  type nonrec dpor = dpor

  let dpor_create = dpor_create

  type nonrec ctx = ctx = {
    mk : unit -> instance;
    max_depth : int;
    preemption_bound : int option;
    max_failures : int;
    memo : memo option;
    acc : acc;
    on_run : acc -> unit;
    pool : pool;
    por : bool;
    dpor : dpor option;
    use_snapshots : bool;
    spool : spool;
    mutable mass : float;
  }

  let recording_mk = recording_mk
  let extend = extend
  let fail = fail
  let preemption_cost = preemption_cost
  let sleep_skip = sleep_skip
end
