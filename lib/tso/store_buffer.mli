(** Per-thread FIFO store buffer of the bounded-TSO machine.

    Two models are supported (DESIGN.md §3, paper §2 and §7.3):

    - {b Abstract}: the TSO[S] abstract machine's buffer. [capacity] entries;
      draining writes the oldest entry directly to memory.
    - {b Realistic}: models the microarchitecture the paper measured. The
      buffer proper has [capacity] entries, and there is an additional
      single-entry {e egress} buffer "B" holding a retired store on its way
      to memory. Draining moves the oldest buffer entry into B (so the
      observable reordering bound is [capacity + 1]); a separate step writes
      B to memory. With [coalesce = true], a drain whose address matches the
      store currently held in B overwrites B in place — the same-address
      coalescing that lets a load be reordered with unboundedly many stores
      when the thread's only stores target one location (the L = 0 anomaly of
      Fig. 8b). *)

type model =
  | Abstract
  | Realistic of { coalesce : bool }
  | Pso
      (** partial store order (the §10 future-work question): one FIFO lane
          per address, so stores to {e different} addresses drain in any
          order. Loads still forward from the newest same-address entry.
          Under PSO the work-stealing put() is broken without an extra
          fence — the tests demonstrate it. *)

type t

val create : capacity:int -> model:model -> t

val capacity : t -> int
val model : t -> model

val entries : t -> int
(** Number of stores held in the buffer proper (excluding B). *)

val pending : t -> int
(** Total stores not yet in memory (buffer proper plus B). *)

val is_empty : t -> bool
(** [pending t = 0]. *)

val is_full : t -> bool
(** The buffer proper has no free entry; a new store cannot issue. *)

val push : t -> Addr.t -> int -> unit
(** Enqueue a store. @raise Invalid_argument if {!is_full}. *)

val lookup : t -> Addr.t -> int option
(** Newest buffered value for an address (store-to-load forwarding), searching
    the buffer proper newest-first, then B. *)

type drain_result =
  | Wrote of Addr.t * int  (** a store became globally visible in memory *)
  | Staged of Addr.t * int  (** a store moved into B (realistic model only) *)
  | Coalesced of Addr.t * int  (** a store overwrote B in place *)

val can_drain : t -> bool
(** A drain step is enabled: the buffer proper is non-empty, and, in the
    realistic model, B is either free or coalescible with the oldest entry. *)

val drain : t -> Memory.t -> drain_result
(** Perform one drain step (lane 0). @raise Invalid_argument if
    [not (can_drain t)]. *)

val drain_lanes : t -> int list
(** The drain choices currently enabled. FIFO models have at most lane
    [0]; the PSO model has one lane per address with pending stores
    (identified by the address index, so lanes are stable across replays). *)

val drain_lane : t -> int -> Memory.t -> drain_result
(** Drain the oldest store of the given lane.
    @raise Invalid_argument if the lane is not in {!drain_lanes}. *)

val can_flush_egress : t -> bool
(** Realistic model only: B holds a store that can be written to memory. *)

val flush_egress : t -> Memory.t -> Addr.t * int
(** Write B to memory. @raise Invalid_argument if [not (can_flush_egress t)]. *)

val to_list : t -> (Addr.t * int) list
(** Pending stores oldest-first (B first if occupied), for traces. *)

val egress_entry : t -> (Addr.t * int) option
(** The store currently held in B, if any. Distinguishing B from the buffer
    proper matters for state fingerprints: a store staged in B and the same
    store still queued enable different transitions. *)

val oldest : t -> (Addr.t * int) option
(** The oldest entry of the buffer proper — the store the next FIFO drain
    will propagate. The explorer's transition footprints use it to name the
    address a [Drain] writes. *)

val clear : t -> unit
(** Empty the buffer proper and B. Snapshot-restore support for the
    explorer; not a machine transition. *)

val set_egress : t -> (Addr.t * int) option -> unit
(** Overwrite B. Snapshot-restore support for the explorer; not a machine
    transition. *)

val buffered : t -> (Addr.t * int) list
(** The buffer proper only, oldest-first (excludes B). *)

val iter_entries : t -> (Addr.t * int -> unit) -> unit
(** Iterate the buffer proper oldest-first without building a list; the
    callback receives the buffer's own entries (no per-entry allocation).
    Used by {!Machine.fingerprint}'s hot path. *)

val pp : Memory.t -> Format.formatter -> t -> unit
