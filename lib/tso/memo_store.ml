(* Disk-backed visited-state store: the explorer's memo table, persisted
   across runs so repeated explorations of the same configuration are
   incremental. The layout is a directory:

     PATH/header.json   -- schema + the configuration the entries are valid
                           for (config string, bounds, reduction flags)
     PATH/shard-K.dat   -- append-only "fingerprint depth_rem preempt_rem"
                           lines, sharded by fingerprint
     PATH/failures.json -- the violations sighted by committed searches,
                           so a fully-memoized warm run still reports them

   Soundness mirrors the in-memory cache ({!Explore}): an entry only prunes
   a revisit with no more remaining budget than the recorded visit, and the
   header pins everything else that shapes the reduced tree (machine
   configuration, depth bound, preemption bound, por/dpor). A store opened
   against a mismatched header is rejected with a descriptive error rather
   than silently poisoning verdicts.

   Concurrency: [seen] is safe from any domain — the table is sharded by
   fingerprint with one mutex per shard, and novel entries are buffered
   per shard (write-back) until [commit] appends them. [commit] must be
   called from one domain, after the search quiesces, and only for
   searches that ran to completion: entries from a [max_runs]-interrupted
   search are real visits, but the failure set of a partial search is not
   the configuration's failure set, so partial searches are not merged. *)

let schema = "wsrepro-memo/v1"
let n_shards = 16

type shard = {
  lock : Mutex.t;
  tbl : (int, (int * int) list) Hashtbl.t;
  mutable pending : (int * int * int) list;  (** newest first *)
}

type t = {
  path : string;
  header : Telemetry.Json.value;
  shards : shard array;
  mutable stored_failures : (int list * string) list;
  mutable loaded : int;
  lookups : int Atomic.t;
  hits : int Atomic.t;
}

(* The Pareto-frontier membership/insertion shared with the in-memory memo
   (re-exported there as [Explore.Internal.memo_tbl_check]): a fingerprint
   maps to the maximal (depth_rem, preempt_rem) pairs already explored. *)
let tbl_check tbl fp ~depth_rem ~preempt_rem =
  let entries = Option.value ~default:[] (Hashtbl.find_opt tbl fp) in
  if List.exists (fun (d, p) -> d >= depth_rem && p >= preempt_rem) entries
  then true
  else begin
    let entries =
      (depth_rem, preempt_rem)
      :: List.filter
           (fun (d, p) -> not (d <= depth_rem && p <= preempt_rem))
           entries
    in
    Hashtbl.replace tbl fp entries;
    false
  end

let header_json ~config ~max_depth ~preemption_bound ~por ~dpor =
  let open Telemetry.Json in
  Obj
    [
      ("schema", Str schema);
      ("config", Str config);
      ("max_depth", Int max_depth);
      ( "preemption_bound",
        Int (match preemption_bound with None -> -1 | Some b -> b) );
      ("por", Bool por);
      ("dpor", Bool dpor);
      ("shards", Int n_shards);
    ]

let fresh ~path ~header =
  {
    path;
    header;
    shards =
      Array.init n_shards (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 1024; pending = [] });
    stored_failures = [];
    loaded = 0;
    lookups = Atomic.make 0;
    hits = Atomic.make 0;
  }

let shard_file path k = Filename.concat path (Printf.sprintf "shard-%d.dat" k)
let header_file path = Filename.concat path "header.json"
let failures_file path = Filename.concat path "failures.json"

let check_header ~path ~expected found =
  let open Telemetry.Json in
  let err what = Error (Printf.sprintf "%s: memo store %s" path what) in
  let field name =
    match (member name found, member name expected) with
    | Some f, Some e -> Ok (f, e)
    | _ -> err (Printf.sprintf "header is missing %S" name)
  in
  let describe = function
    | Str s -> s
    | Int i -> string_of_int i
    | Bool b -> string_of_bool b
    | v -> to_string ~indent:false v
  in
  let rec check = function
    | [] -> Ok ()
    | name :: rest -> (
        match field name with
        | Error _ as e -> e
        | Ok (f, e) ->
            if f = e then check rest
            else
              err
                (Printf.sprintf "was built with %s = %s; this run uses %s"
                   name (describe f) (describe e)))
  in
  match member "schema" found with
  | Some (Str s) when s = schema ->
      check
        [ "config"; "max_depth"; "preemption_bound"; "por"; "dpor"; "shards" ]
  | Some (Str s) ->
      err (Printf.sprintf "has schema %S; this build expects %S" s schema)
  | _ -> err "header has no schema field"

let load_failures path =
  let file = failures_file path in
  if not (Sys.file_exists file) then Ok []
  else
    match Telemetry.Json.parse_file file with
    | Error e -> Error (Printf.sprintf "%s: %s" file e)
    | Ok doc -> (
        let open Telemetry.Json in
        let one = function
          | Obj _ as f -> (
              match (member "choices" f, member "message" f) with
              | Some (List cs), Some (Str msg) ->
                  let choice = function Int i -> i | _ -> raise Exit in
                  Some (List.map choice cs, msg)
              | _ -> None)
          | _ -> None
        in
        match member "failures" doc with
        | Some (List fs) -> (
            try
              match List.map one fs with
              | l when List.for_all Option.is_some l ->
                  Ok (List.map Option.get l)
              | _ -> Error (file ^ ": malformed failure entry")
            with Exit -> Error (file ^ ": malformed failure entry"))
        | _ -> Error (file ^ ": missing failures field"))

let load_shard t k =
  let file = shard_file t.path k in
  if not (Sys.file_exists file) then Ok ()
  else begin
    let ic = open_in file in
    let sh = t.shards.(k) in
    let result = ref (Ok ()) in
    (try
       let rec loop () =
         match In_channel.input_line ic with
         | None -> ()
         | Some line ->
             (match
                Scanf.sscanf line "%d %d %d" (fun fp d p -> (fp, d, p))
              with
             | fp, d, p ->
                 ignore (tbl_check sh.tbl fp ~depth_rem:d ~preempt_rem:p);
                 t.loaded <- t.loaded + 1
             | exception _ ->
                 result := Error (file ^ ": malformed entry " ^ String.escaped line));
             if !result = Ok () then loop ()
       in
       loop ()
     with e ->
       close_in_noerr ic;
       raise e);
    close_in ic;
    !result
  end

let open_ ~path ~config ~max_depth ~preemption_bound ~por ~dpor () =
  let header = header_json ~config ~max_depth ~preemption_bound ~por ~dpor in
  if not (Sys.file_exists path) then Ok (fresh ~path ~header)
  else if not (Sys.is_directory path) then
    Error (path ^ ": memo store path exists but is not a directory")
  else if not (Sys.file_exists (header_file path)) then
    Error (path ^ ": memo store directory has no header.json")
  else
    match Telemetry.Json.parse_file (header_file path) with
    | Error e -> Error (Printf.sprintf "%s: unreadable header (%s)" path e)
    | Ok found -> (
        match check_header ~path ~expected:header found with
        | Error _ as e -> e
        | Ok () -> (
            let t = fresh ~path ~header in
            let rec shards k =
              if k >= n_shards then Ok ()
              else match load_shard t k with Ok () -> shards (k + 1) | e -> e
            in
            match shards 0 with
            | Error _ as e -> e
            | Ok () -> (
                match load_failures path with
                | Error _ as e -> e
                | Ok fs ->
                    t.stored_failures <- fs;
                    Ok t)))

let seen t fp ~depth_rem ~preempt_rem =
  Atomic.incr t.lookups;
  let sh = t.shards.((fp land max_int) mod n_shards) in
  Mutex.lock sh.lock;
  let hit = tbl_check sh.tbl fp ~depth_rem ~preempt_rem in
  if hit then Atomic.incr t.hits
  else sh.pending <- (fp, depth_rem, preempt_rem) :: sh.pending;
  Mutex.unlock sh.lock;
  hit

let lookups t = Atomic.get t.lookups
let hits t = Atomic.get t.hits
let loaded_entries t = t.loaded

let pending_entries t =
  Array.fold_left (fun n sh -> n + List.length sh.pending) 0 t.shards

let stored_failures t = t.stored_failures

(* Stored failures come first (their sighting order is the committed one),
   then any novel live sightings, deduplicated by schedule; capped at
   [max_failures] so warm reruns report byte-identically to the run that
   populated the store. *)
let merge_failures t ~max_failures live =
  let known schedule l = List.exists (fun (s, _) -> s = schedule) l in
  let novel =
    List.filter (fun (s, _) -> not (known s t.stored_failures)) live
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | f :: rest -> f :: take (n - 1) rest
  in
  take max_failures (t.stored_failures @ novel)

let failures_json failures =
  let open Telemetry.Json in
  Obj
    [
      ("schema", Str schema);
      ( "failures",
        List
          (List.map
             (fun (choices, msg) ->
               Obj
                 [
                   ("choices", List (List.map (fun i -> Int i) choices));
                   ("message", Str msg);
                 ])
             failures) );
    ]

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if parent <> path then mkdir_p parent;
    (* tolerate a concurrent creator (e.g. sibling stores under one root) *)
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.is_directory path -> ()
  end

let commit t ~failures =
  try
    mkdir_p t.path;
    Telemetry.Json.write_file (header_file t.path) t.header;
    Array.iteri
      (fun k sh ->
        match sh.pending with
        | [] -> ()
        | pending ->
            let oc =
              open_out_gen
                [ Open_wronly; Open_append; Open_creat ]
                0o644 (shard_file t.path k)
            in
            List.iter
              (fun (fp, d, p) -> Printf.fprintf oc "%d %d %d\n" fp d p)
              (List.rev pending);
            close_out oc;
            sh.pending <- [])
      t.shards;
    Telemetry.Json.write_file (failures_file t.path) (failures_json failures);
    t.stored_failures <- failures;
    Ok ()
  with Sys_error e -> Error e
