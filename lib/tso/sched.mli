(** Nondeterministic schedulers for the abstract machine.

    A policy picks, at each state, one of the enabled transitions. The
    weighted random policy is the workhorse for litmus testing: giving drains
    a low weight keeps stores buffered for a long time, maximising the
    store/load reordering a run exhibits (the adversarial behaviour the
    paper's §7.3 litmus campaign is hunting for). *)

type outcome =
  | Quiescent  (** every thread finished and every buffer drained *)
  | Max_steps  (** the step budget ran out first *)
  | Deadlock  (** no transition enabled but the machine is not quiescent *)

type policy = Machine.t -> Machine.tbuf -> Machine.transition
(** Invoked only on non-empty transition buffers. The buffer is
    {!run}'s reusable enabled-set buffer (see {!Machine.enabled_into});
    policies must not retain it across invocations. *)

val run : ?max_steps:int -> Machine.t -> policy -> outcome
(** Drive the machine with a policy until quiescence or the step budget
    (default [2_000_000]) is exhausted. The enabled set is recomputed into
    one reusable buffer per step, so the loop allocates nothing in steady
    state. *)

val round_robin : unit -> policy
(** Deterministic baseline: cycles fairly over transitions. *)

val uniform : Random.State.t -> policy
(** Uniformly random among enabled transitions. *)

val weighted : Random.State.t -> drain_weight:float -> policy
(** Random, but a [Drain]/[Flush] transition is selected with relative weight
    [drain_weight] (instruction steps have weight [1.0]). Values well below 1
    delay buffer drains and maximise observable reordering; values above 1
    approximate an eagerly-draining machine. When only drains are enabled one
    is picked uniformly. *)

val replay : int list -> fallback:policy -> policy
(** Follow a recorded list of choice indices (indices into the enabled list),
    then defer to [fallback]. Used by {!Explore} and by tests reproducing a
    specific interleaving. *)

val record : (int -> unit) -> policy -> policy
(** Wrap a policy, reporting the index of each choice it makes. *)
