(** The [wsrepro-forensics/v1] failure report: one byte-stable JSON
    artifact per explorer failure, containing the original and minimized
    schedules, shrink statistics, every reorder witness, a human-readable
    timeline, and a Chrome trace of the failing run.

    Everything in the document derives from the deterministic simulator —
    no wall-clock timestamps, no iteration-order dependence — so building
    the same failure twice renders to identical bytes, and a report can be
    diffed across commits to see {e how} a regression's interleaving
    changed. The schema is validated (structurally, field by field) by
    {!validate}, built on the in-tree strict {!Telemetry.Json} parser;
    tests and CI check emitted documents without external tooling. *)

type t = {
  config : (string * Telemetry.Json.value) list;
      (** caller-supplied scenario/machine description (queue, S, δ, ...) *)
  message : string;  (** the verdict both schedules replay to *)
  original : int list;  (** the recorded failing schedule, root-first *)
  minimized : int list;  (** the ddmin result, root-first *)
  shrink_iterations : int;
  replay : Witness.replay;  (** instrumented replay of [minimized] *)
}

val build :
  ?sink:Telemetry.Sink.t ->
  ?progress:Telemetry.Progress.t ->
  mk:(unit -> Tso.Explore.instance) ->
  config:(string * Telemetry.Json.value) list ->
  choices:int list ->
  message:string ->
  unit ->
  (t, string) Stdlib.result
(** Shrink the failure ({!Shrink.minimize}), then replay the minimized
    schedule with witness extraction ({!Witness.replay}). [Error _] if the
    original schedule does not reproduce the verdict, or if the minimized
    schedule's replayed verdict diverges from it (both indicate a stale
    failure record or a non-deterministic scenario). *)

val max_reorder_depth : t -> int
(** Greatest observed reorder depth across the witnesses; 0 when the
    failure needed no store-buffer reordering at all. *)

val summary : t -> string
(** A few human-readable lines (shrink ratio, witness count and depths)
    for CLI output; deterministic. *)

val to_json : t -> Telemetry.Json.value
(** The full [wsrepro-forensics/v1] document, including the rendered
    timeline and the embedded Chrome trace ([chrome_trace] field — extract
    it to its own file to load in Perfetto). *)

val to_string : ?sink:Telemetry.Sink.t -> t -> string
(** Rendered document. [sink]'s [forensics_report_bytes] counter is bumped
    by the byte length. *)

val write : ?sink:Telemetry.Sink.t -> t -> string -> unit
(** [write t file] saves {!to_string} to [file]. *)

val validate : Telemetry.Json.value -> (unit, string) Stdlib.result
(** Structural schema check of a parsed document: schema tag, both
    schedules (with consistent lengths, minimized no longer than
    original), per-witness field types with [depth] equal to the pending
    list's length, [max_reorder_depth] consistent with the witnesses, a
    non-empty timeline, and an embedded Chrome trace with a [traceEvents]
    list. *)

val validate_file : string -> (unit, string) Stdlib.result
(** Parse with {!Telemetry.Json.parse_file}, then {!validate}. *)
