module J = Telemetry.Json

type t = {
  config : (string * J.value) list;
  message : string;
  original : int list;
  minimized : int list;
  shrink_iterations : int;
  replay : Witness.replay;
}

let build ?sink ?progress ~mk ~config ~choices ~message () =
  match Shrink.minimize ?sink ?progress ~mk ~choices ~message () with
  | Error _ as e -> e |> Result.map (fun _ -> assert false)
  | Ok sh -> (
      let replay = Witness.replay ?sink ~mk sh.Shrink.choices in
      match replay.Witness.verdict with
      | Error m when m = message ->
          Ok
            {
              config;
              message;
              original = choices;
              minimized = sh.Shrink.choices;
              shrink_iterations = sh.Shrink.iterations;
              replay;
            }
      | Error m ->
          Error
            (Printf.sprintf
               "minimized schedule diverged on witness replay: %S, expected %S"
               m message)
      | Ok () ->
          Error "minimized schedule replayed clean on witness replay")

let max_reorder_depth t = t.replay.Witness.max_depth

let summary t =
  let b = Buffer.create 256 in
  Printf.bprintf b "forensics: minimized schedule %d -> %d choices (%d shrink replays)\n"
    (List.length t.original) (List.length t.minimized) t.shrink_iterations;
  Printf.bprintf b "forensics: %d reorder witness(es), max observed reorder depth %d\n"
    (List.length t.replay.Witness.witnesses)
    t.replay.Witness.max_depth;
  List.iter
    (fun (w : Witness.t) ->
      Printf.bprintf b "  step %d %s: %s = %d with %d pending store(s): %s\n"
        w.Witness.step w.Witness.thread w.Witness.instr w.Witness.value
        w.Witness.depth
        (String.concat ", "
           (List.map
              (fun (p : Witness.pending_store) ->
                Printf.sprintf "%s:=%d" p.Witness.addr p.Witness.value)
              w.Witness.pending)))
    t.replay.Witness.witnesses;
  Buffer.contents b

(* The Chrome trace of the minimized run: one 1-cycle span per event on the
   owning thread's track (category "step" / "memory" / "witness"), an
   instant marking each witness load's observed depth, and a per-thread
   store-buffer counter track. Event steps are the deterministic trace
   numbering, so the export is byte-stable. *)
let chrome_trace t =
  let r = t.replay in
  let ct = Telemetry.Chrome_trace.create () in
  Telemetry.Chrome_trace.set_process_name ct ~pid:0 "wsrepro forensics";
  List.iteri
    (fun tid name -> Telemetry.Chrome_trace.set_thread_name ct ~pid:0 ~tid name)
    r.Witness.threads;
  let witness_depth =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (w : Witness.t) -> Hashtbl.replace tbl w.Witness.step w.Witness.depth)
      r.Witness.witnesses;
    fun step -> Hashtbl.find_opt tbl step
  in
  List.iter
    (fun (step, tid, text) ->
      if text = "(done)" then
        Telemetry.Chrome_trace.instant ct ~name:"done" ~cat:"thread" ~tid
          ~ts:step ()
      else begin
        let is_memory = String.length text > 0 && text.[0] = '~' in
        match witness_depth step with
        | Some depth ->
            Telemetry.Chrome_trace.complete ct ~name:text ~cat:"witness" ~tid
              ~ts:step ~dur:1 ();
            Telemetry.Chrome_trace.instant ct
              ~name:(Printf.sprintf "reorder depth %d" depth)
              ~cat:"witness" ~tid ~ts:step ()
        | None ->
            Telemetry.Chrome_trace.complete ct ~name:text
              ~cat:(if is_memory then "memory" else "step")
              ~tid ~ts:step ~dur:1 ()
      end)
    r.Witness.events;
  List.iter
    (fun (step, tid, pending) ->
      Telemetry.Chrome_trace.counter ct ~name:"store-buffer" ~cat:"sb" ~tid
        ~ts:step
        ~values:[ ("pending", pending) ]
        ())
    r.Witness.occupancy;
  ct

let schema = "wsrepro-forensics/v1"

let schedule_json choices =
  J.Obj
    [
      ("length", J.Int (List.length choices));
      ("choices", J.List (List.map (fun i -> J.Int i) choices));
    ]

let witness_json (w : Witness.t) =
  J.Obj
    [
      ("step", J.Int w.Witness.step);
      ("tid", J.Int w.Witness.tid);
      ("thread", J.Str w.Witness.thread);
      ("instr", J.Str w.Witness.instr);
      ("value", J.Int w.Witness.value);
      ("forwarded", J.Bool w.Witness.forwarded);
      ("depth", J.Int w.Witness.depth);
      ( "pending",
        J.List
          (List.map
             (fun (p : Witness.pending_store) ->
               J.Obj
                 [
                   ("addr", J.Str p.Witness.addr);
                   ("addr_index", J.Int p.Witness.addr_index);
                   ("value", J.Int p.Witness.value);
                 ])
             w.Witness.pending) );
    ]

let to_json t =
  J.Obj
    [
      ("schema", J.Str schema);
      ("config", J.Obj t.config);
      ("verdict", J.Str t.message);
      ("original", schedule_json t.original);
      ("minimized", schedule_json t.minimized);
      ( "shrink",
        J.Obj
          [
            ("iterations", J.Int t.shrink_iterations);
            ( "removed_choices",
              J.Int (List.length t.original - List.length t.minimized) );
          ] );
      ( "witnesses",
        J.List (List.map witness_json t.replay.Witness.witnesses) );
      ("max_reorder_depth", J.Int t.replay.Witness.max_depth);
      ("timeline", J.Str t.replay.Witness.timeline);
      ("chrome_trace", Telemetry.Chrome_trace.to_json (chrome_trace t));
    ]

let to_string ?sink t =
  let s = J.to_string (to_json t) in
  (match sink with
  | Some k ->
      k.Telemetry.Sink.forensics_report_bytes <-
        k.Telemetry.Sink.forensics_report_bytes + String.length s
  | None -> ());
  s

let write ?sink t file =
  let oc = open_out file in
  output_string oc (to_string ?sink t);
  close_out oc

(* {2 Schema validation} *)

let ( let* ) = Result.bind

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_int name = function
  | J.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S: expected an integer" name)

let as_str name = function
  | J.Str s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected a string" name)

let as_list name = function
  | J.List l -> Ok l
  | _ -> Error (Printf.sprintf "field %S: expected a list" name)

let int_field name j =
  let* v = field name j in
  as_int name v

let str_field name j =
  let* v = field name j in
  as_str name v

let list_field name j =
  let* v = field name j in
  as_list name v

let check_schedule name j =
  let* sched = field name j in
  let* len = int_field "length" sched in
  let* choices = list_field "choices" sched in
  if List.length choices <> len then
    Error (Printf.sprintf "%s: length %d but %d choices" name len
             (List.length choices))
  else if
    List.exists (function J.Int i -> i < 0 | _ -> true) choices
  then Error (name ^ ": choices must be non-negative integers")
  else Ok len

let check_witness i w =
  let at fmt = Printf.ksprintf (fun s -> Printf.sprintf "witness %d: %s" i s) fmt in
  let* _ = Result.map_error (at "%s") (int_field "step" w) in
  let* _ = Result.map_error (at "%s") (int_field "tid" w) in
  let* _ = Result.map_error (at "%s") (str_field "thread" w) in
  let* _ = Result.map_error (at "%s") (str_field "instr" w) in
  let* _ = Result.map_error (at "%s") (int_field "value" w) in
  let* _ =
    match J.member "forwarded" w with
    | Some (J.Bool _) -> Ok ()
    | _ -> Error (at "forwarded must be a boolean")
  in
  let* depth = Result.map_error (at "%s") (int_field "depth" w) in
  let* pending = Result.map_error (at "%s") (list_field "pending" w) in
  if depth <> List.length pending then
    Error (at "depth %d but %d pending stores" depth (List.length pending))
  else if depth < 1 then Error (at "witness with empty pending set")
  else
    List.fold_left
      (fun acc p ->
        let* () = acc in
        let* _ = Result.map_error (at "pending: %s") (str_field "addr" p) in
        let* _ = Result.map_error (at "pending: %s") (int_field "value" p) in
        Ok ())
      (Ok ()) pending
    |> Result.map (fun () -> depth)

let validate j =
  let* s = str_field "schema" j in
  if s <> schema then
    Error (Printf.sprintf "schema %S, expected %S" s schema)
  else
    let* _ = field "config" j in
    let* _ = str_field "verdict" j in
    let* orig_len = check_schedule "original" j in
    let* min_len = check_schedule "minimized" j in
    if min_len > orig_len then
      Error
        (Printf.sprintf "minimized schedule (%d) longer than original (%d)"
           min_len orig_len)
    else
      let* shrink = field "shrink" j in
      let* _ = int_field "iterations" shrink in
      let* witnesses = list_field "witnesses" j in
      let* max_depth = int_field "max_reorder_depth" j in
      let* observed =
        List.fold_left
          (fun acc (i, w) ->
            let* m = acc in
            let* d = check_witness i w in
            Ok (max m d))
          (Ok 0)
          (List.mapi (fun i w -> (i, w)) witnesses)
      in
      if observed <> max_depth then
        Error
          (Printf.sprintf "max_reorder_depth %d but witnesses reach %d"
             max_depth observed)
      else
        let* timeline = str_field "timeline" j in
        if timeline = "" then Error "empty timeline"
        else
          let* trace = field "chrome_trace" j in
          let* _ = list_field "traceEvents" trace in
          Ok ()

let validate_file file =
  let* j = J.parse_file file in
  validate j
