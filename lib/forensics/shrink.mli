(** ddmin-style minimization of failing explorer schedules.

    A recorded failure ({!Tso.Explore.stats.failures}) is a root-first
    choice sequence that {!Tso.Explore.replay_choices} drives back to the
    same verdict. Those sequences record {e every} scheduling decision of
    the violating run — forced steps, irrelevant drains, the other
    threads' unrelated progress — so they are far longer than the actual
    reordering that broke the invariant. This module shrinks them with
    the classic delta-debugging minimization (ddmin, Zeller & Hildebrandt):
    repeatedly try dropping chunks of the sequence, keeping any shortened
    candidate that still replays to the {e same verdict message}, and
    refine the chunk granularity until no single choice can be removed.

    Dropped choices change the meaning of the indices after them (a choice
    is an index into the enabled set of the state it executes in), so a
    candidate is never assumed valid: the oracle replays it, and a
    candidate that runs off the schedule or picks an out-of-range index
    simply does not reproduce. The final sequence is 1-minimal: removing
    any single remaining choice loses the failure. *)

type result = {
  choices : int list;  (** the minimized schedule, root-first *)
  message : string;  (** the preserved verdict *)
  original : int list;  (** the schedule the shrink started from *)
  iterations : int;  (** oracle replays performed *)
}

val reproduces :
  mk:(unit -> Tso.Explore.instance) -> message:string -> int list -> bool
(** The shrink oracle: does the candidate replay to exactly [message]?
    A candidate that replays clean, fails with a different message, ends
    early, or indexes outside an enabled set answers [false]. *)

val minimize :
  ?sink:Telemetry.Sink.t ->
  ?progress:Telemetry.Progress.t ->
  mk:(unit -> Tso.Explore.instance) ->
  choices:int list ->
  message:string ->
  unit ->
  (result, string) Stdlib.result
(** Shrink [choices] to a 1-minimal schedule that still replays to
    [message]. [Error _] if the original sequence itself does not
    reproduce (a stale or mis-oriented failure record). [sink]'s
    [shrink_iterations] counter is bumped once per oracle replay;
    [progress], if given, is sampled at the same points (long shrinks get
    a live stderr line, stdout is untouched). *)
