type result = {
  choices : int list;
  message : string;
  original : int list;
  iterations : int;
}

let reproduces ~mk ~message cs =
  (* Generous but finite suffix budget: a truncated candidate can park the
     machine where the greedy suffix driver would spin forever (see
     {!Tso.Explore.replay_choices}); full schedules quiesce well within a
     few hundred steps in every scenario we explore. *)
  let max_steps = (4 * List.length cs) + 1_000 in
  match Tso.Explore.replay_choices ~max_steps ~mk cs with
  | Error m -> m = message
  | Ok () -> false
  | exception Invalid_argument _ ->
      (* The candidate ran off the end of the schedule, picked an index
         outside the enabled set of the state it reached, or livelocked the
         suffix driver — dropping earlier choices re-interprets the later
         ones, so these are expected outcomes for a candidate, not
         errors. *)
      false

(* Split [arr] into [n] chunks of near-equal length and return the
   complement of chunk [i] (everything except it), as a list. *)
let complement arr n i =
  let len = Array.length arr in
  let lo = i * len / n and hi = (i + 1) * len / n in
  let out = ref [] in
  for k = len - 1 downto 0 do
    if k < lo || k >= hi then out := arr.(k) :: !out
  done;
  !out

let minimize ?sink ?progress ~mk ~choices ~message () =
  let iterations = ref 0 in
  let test cs =
    incr iterations;
    (match sink with
    | Some s ->
        s.Telemetry.Sink.shrink_iterations <-
          s.Telemetry.Sink.shrink_iterations + 1
    | None -> ());
    (match progress with
    | Some p ->
        Telemetry.Progress.sample p ~count:!iterations (fun ~rate ->
            Printf.sprintf "%d shrink replays (%.0f/s), candidate length %d"
              !iterations rate (List.length cs))
    | None -> ());
    reproduces ~mk ~message cs
  in
  if not (test choices) then
    Error
      "original choice sequence does not replay to the recorded verdict \
       message"
  else begin
    (* ddmin, complement-only variant: at granularity [n], try removing
       each of the [n] chunks; on success restart from the shortened
       sequence at granularity [max (n-1) 2]; when nothing can be removed,
       double the granularity, and stop once single choices (n = length)
       survive removal — the sequence is then 1-minimal. *)
    let rec go current n =
      let arr = Array.of_list current in
      let len = Array.length arr in
      if len <= 1 then current
      else begin
        let rec try_chunk i =
          if i >= n then None
          else
            let cand = complement arr n i in
            if List.length cand < len && test cand then Some cand
            else try_chunk (i + 1)
        in
        match try_chunk 0 with
        | Some cand -> go cand (max (n - 1) 2)
        | None -> if n < len then go current (min (2 * n) len) else current
      end
    in
    let minimized = go choices 2 in
    Ok { choices = minimized; message; original = choices; iterations = !iterations }
  end
