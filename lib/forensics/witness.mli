(** Reorder witnesses: the concrete TSO[S] reordering inside a failing
    schedule, made visible per load.

    On TSO the only observable reordering is load-before-earlier-store: a
    load commits while program-order-earlier stores of the same thread are
    still sitting in its store buffer (and, in the realistic model, the
    egress slot B). The paper's δ argument (§4) is exactly a bound on how
    many such stores can be pending when the worker's [take] reads [H] —
    so when a δ-soundness scenario fails, the proof of {e why} is the load
    that committed with more than δ stores pending. This module replays a
    (typically minimized, see {!Shrink}) schedule on a fresh machine and
    captures, for every plain load that commits with a non-empty buffer,
    the full set of pending stores: the witness. The number of pending
    stores is the {e observed reorder depth} — the store-buffer capacity
    the violation actually needed, i.e. the observed S of TSO[S].

    Atomic RMWs and fences only execute on an empty buffer, so plain loads
    are the only instructions that can witness a reordering. A load whose
    value forwards from its own buffer is still recorded (with
    [forwarded = true]): it is reordered with respect to the {e other}
    pending stores, which other threads have not seen. *)

type pending_store = {
  addr : string;  (** symbolic cell name, e.g. ["q.T"] *)
  addr_index : int;
  value : int;
}

type t = {
  step : int;
      (** event number of the load in the replayed trace (aligns with the
          step column of {!Tso.Trace.render} and with [events] below) *)
  tid : int;
  thread : string;
  instr : string;  (** e.g. ["load q.H"] *)
  value : int;  (** the value the load observed *)
  forwarded : bool;  (** satisfied from the thread's own buffer *)
  pending : pending_store list;
      (** program-order-earlier stores still buffered when the load
          committed, oldest-first (egress slot B first when occupied) *)
  depth : int;  (** [List.length pending] — the observed reorder depth *)
}

type replay = {
  witnesses : t list;  (** in commit order *)
  max_depth : int;  (** greatest witness depth, 0 when no witness *)
  timeline : string;  (** columns-per-thread rendering of the whole run *)
  events : (int * int * string) list;
      (** every trace event as [(step, tid, text)], execution order *)
  occupancy : (int * int * int) list;
      (** [(step, tid, pending_stores)] sampled after every event — the
          store-buffer counter track of the Chrome trace export *)
  threads : string list;  (** thread names by tid *)
  verdict : (unit, string) Stdlib.result;  (** the replayed run's check *)
}

val replay :
  ?sink:Telemetry.Sink.t ->
  mk:(unit -> Tso.Explore.instance) ->
  int list ->
  replay
(** Replay a root-first choice sequence (the orientation of
    {!Tso.Explore.failures_in_replay_order}) on a fresh instance with a
    trace attached, driving any forced suffix to quiescence exactly like
    {!Tso.Explore.replay_choices}, and extract every reorder witness along
    the way. [sink]'s [witness_events] counter is bumped once per witness.
    @raise Invalid_argument if the sequence does not fit the scenario (bad
    index or early end) — minimize against the same [mk] first. *)
