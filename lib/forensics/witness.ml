open Tso

type pending_store = {
  addr : string;
  addr_index : int;
  value : int;
}

type t = {
  step : int;
  tid : int;
  thread : string;
  instr : string;
  value : int;
  forwarded : bool;
  pending : pending_store list;
  depth : int;
}

type replay = {
  witnesses : t list;
  max_depth : int;
  timeline : string;
  events : (int * int * string) list;
  occupancy : (int * int * int) list;
  threads : string list;
  verdict : (unit, string) Stdlib.result;
}

let replay ?sink ~mk choices =
  let inst = mk () in
  let m = inst.Explore.machine in
  let mem = Machine.memory m in
  (* The trace provides the timeline and the event list; a second listener
     samples per-thread buffer occupancy after every event. Both listeners
     see events in the same order, so step numbers align. *)
  let trace = Trace.attach m in
  let occ_rev = ref [] in
  let evno = ref 0 in
  Machine.on_event m (fun ev ->
      incr evno;
      let tid =
        match ev with
        | Machine.Ev_exec { tid; _ }
        | Machine.Ev_drain { tid; _ }
        | Machine.Ev_flush { tid; _ }
        | Machine.Ev_done tid ->
            tid
      in
      occ_rev := (!evno, tid, Machine.buffered_stores m tid) :: !occ_rev);
  let witnesses_rev = ref [] in
  (* Capture just before the transition fires: a load's witness is the
     buffer contents at commit time, and a load leaves the buffer
     untouched, so pre-apply and post-apply states agree — but the pending
     instruction (and its forwarded value) only exists pre-apply. *)
  let consider tr =
    match tr with
    | Machine.Step tid -> (
        match Machine.pending_load m tid with
        | Some (a, v, forwarded) -> (
            match Machine.buffered_entries m tid with
            | [] -> ()
            | pend ->
                let w =
                  {
                    step = !evno + 1;  (* the Ev_exec this load emits *)
                    tid;
                    thread = Machine.thread_name m tid;
                    instr = Printf.sprintf "load %s" (Memory.name mem a);
                    value = v;
                    forwarded;
                    pending =
                      List.map
                        (fun (pa, pv) ->
                          {
                            addr = Memory.name mem pa;
                            addr_index = Addr.to_index pa;
                            value = pv;
                          })
                        pend;
                    depth = List.length pend;
                  }
                in
                witnesses_rev := w :: !witnesses_rev;
                (match sink with
                | Some s ->
                    s.Telemetry.Sink.witness_events <-
                      s.Telemetry.Sink.witness_events + 1
                | None -> ()))
        | None -> ())
    | Machine.Drain _ | Machine.Flush _ -> ()
  in
  (* Drive the recorded schedule through the same choice universe the
     search used ({!Explore.next_choices}), then any forced suffix to
     quiescence — mirroring {!Explore.replay_choices}. *)
  List.iter
    (fun i ->
      match Explore.next_choices m with
      | [] -> invalid_arg "Forensics.Witness.replay: run ended early"
      | ts ->
          if i < 0 || i >= List.length ts then
            invalid_arg "Forensics.Witness.replay: bad choice index";
          let tr = List.nth ts i in
          consider tr;
          Machine.apply m tr)
    choices;
  (* Same suffix budget rationale as {!Shrink.reproduces}: the input is
     normally a minimized schedule that already quiesced under the oracle,
     but a caller-supplied sequence gets the same livelock protection. *)
  let rec finish budget =
    match Machine.enabled m with
    | [] -> ()
    | tr :: _ ->
        if budget = 0 then
          invalid_arg "Forensics.Witness.replay: suffix did not quiesce";
        consider tr;
        Machine.apply m tr;
        finish (budget - 1)
  in
  finish ((4 * List.length choices) + 1_000);
  let verdict = inst.Explore.check () in
  let witnesses = List.rev !witnesses_rev in
  {
    witnesses;
    max_depth = List.fold_left (fun acc w -> max acc w.depth) 0 witnesses;
    timeline = Trace.render trace;
    events = Trace.entries trace;
    occupancy = List.rev !occ_rev;
    threads =
      List.init (Machine.thread_count m) (fun tid -> Machine.thread_name m tid);
    verdict;
  }
