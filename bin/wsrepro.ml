(* wsrepro — CLI for the fence-free work stealing reproduction.

   One subcommand per experiment (fig1, fig7, fig8, fig10, fig11, table1,
   all), plus exploratory tools: [litmus] for a single Fig. 9 cell, [check]
   for randomized safety testing of any queue, and [explore] for bounded
   exhaustive model checking. *)

open Cmdliner

let machine_conv =
  let parse s =
    match Ws_harness.Machine_config.find s with
    | m -> Ok m
    | exception Not_found ->
        Error
          (`Msg
            (Printf.sprintf "unknown machine %S (expected %s)" s
               (String.concat " | "
                  (List.map
                     (fun (m : Ws_harness.Machine_config.t) -> m.name)
                     Ws_harness.Machine_config.all))))
  in
  let print ppf (m : Ws_harness.Machine_config.t) =
    Format.pp_print_string ppf m.name
  in
  Arg.conv (parse, print)

let machine_arg =
  Arg.(
    value
    & opt machine_conv Ws_harness.Machine_config.haswell
    & info [ "machine"; "m" ] ~docv:"MACHINE"
        ~doc:"Simulated machine: westmere-ex or haswell.")

let repeats_arg =
  Arg.(
    value & opt int 3
    & info [ "repeats"; "r" ] ~docv:"N" ~doc:"Runs per data point (median).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Base RNG seed.")

let queue_arg =
  let doc =
    Printf.sprintf "Queue algorithm: %s."
      (String.concat ", " Ws_core.Registry.names)
  in
  Arg.(value & opt string "ff-the" & info [ "queue"; "q" ] ~docv:"QUEUE" ~doc)

(* fig1 *)
let fig1_cmd =
  let run machine seed =
    print_endline
      "== Figure 1: single-threaded time without the take() fence ==";
    print_string (Ws_harness.Exp_fig1.render (Ws_harness.Exp_fig1.compute ~machine ~seed ()))
  in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Single-threaded fence-removal speedup (Figure 1)")
    Term.(const run $ machine_arg $ seed_arg)

(* fig7 *)
let fig7_cmd =
  Cmd.v
    (Cmd.info "fig7"
       ~doc:"Store-buffer capacity measurement (Figures 6 and 7)")
    Term.(const Ws_harness.Exp_fig7.run $ const ())

let fig_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Fan the experiment's run grid across N OCaml domains. Output is \
           byte-identical to $(b,--jobs 1); only wall-clock time changes.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Maintain a live progress line on stderr. Stdout (tables, \
           verdicts) is byte-identical with or without this flag.")

(* fig8 *)
let fig8_cmd =
  let run runs tasks jobs progress =
    Ws_harness.Exp_fig8.run ~runs_per_l:runs ~tasks ~jobs ~progress ()
  in
  let runs =
    Arg.(
      value & opt int 40
      & info [ "runs" ] ~docv:"N" ~doc:"Runs per (L, delta) pair.")
  in
  let tasks =
    Arg.(
      value & opt int 192
      & info [ "tasks" ] ~docv:"N" ~doc:"Queue size of the litmus program.")
  in
  Cmd.v
    (Cmd.info "fig8" ~doc:"TSO[S] litmus campaign (Figures 8 and 9)")
    Term.(const run $ runs $ tasks $ fig_jobs_arg $ progress_arg)

(* fig10 *)
let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable wsrepro-metrics/v1 JSON sidecar: per \
           (bench, variant), telemetry counters merged over the seeds plus \
           derived rates (fence-stall cycles per take, steal abort rate, \
           delta-checks per steal attempt).")

let trace_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:
          "Record one timed run per variant of the first benchmark as a \
           Chrome trace-event JSON file (load it in Perfetto or \
           chrome://tracing): per-core instruction spans, fence-stall \
           intervals, store-buffer residency of every store.")

let fig10_cmd =
  let run machine repeats jobs benches metrics trace progress =
    let benches = match benches with [] -> None | l -> Some l in
    Ws_harness.Exp_fig10.run machine ~repeats ?benches ~jobs
      ?metrics_file:metrics ?trace_file:trace ~progress ()
  in
  let benches =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"BENCH" ~doc:"Subset of benchmarks (default: all).")
  in
  Cmd.v
    (Cmd.info "fig10" ~doc:"CilkPlus suite vs fence-free variants (Figure 10)")
    Term.(
      const run $ machine_arg $ repeats_arg $ fig_jobs_arg $ benches
      $ metrics_arg $ trace_json_arg $ progress_arg)

(* fig11 *)
let fig11_cmd =
  let run machine repeats jobs spanning progress =
    if spanning then begin
      (* the paper reports spanning-tree results "are similar"; verify that *)
      print_endline "== Figure 11 workload: spanning tree ==";
      print_string
        (Ws_harness.Exp_fig11.render
           (Ws_harness.Exp_fig11.compute ~machine ~repeats
              ~workload:`Spanning_tree ~jobs ()))
    end
    else Ws_harness.Exp_fig11.run ~machine ~repeats ~jobs ~progress ()
  in
  let spanning =
    Arg.(
      value & flag
      & info [ "spanning-tree" ]
          ~doc:"Run the spanning-tree workload instead of transitive closure.")
  in
  Cmd.v
    (Cmd.info "fig11"
       ~doc:"Graph benchmarks vs idempotent work stealing (Figure 11)")
    Term.(
      const run $ machine_arg $ repeats_arg $ fig_jobs_arg $ spanning
      $ progress_arg)

(* table1 *)
let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Benchmark inventory and DAG statistics (Table 1)")
    Term.(const Ws_harness.Exp_table1.run $ const ())

(* all *)
let all_cmd =
  let run repeats jobs =
    Ws_harness.Exp_table1.run ();
    print_newline ();
    Ws_harness.Exp_fig1.run ();
    print_newline ();
    Ws_harness.Exp_fig7.run ();
    print_newline ();
    Ws_harness.Exp_fig8.run ~jobs ();
    print_newline ();
    List.iter
      (fun m ->
        Ws_harness.Exp_fig10.run m ~repeats ~jobs ();
        print_newline ())
      Ws_harness.Machine_config.primary;
    Ws_harness.Exp_fig11.run ~repeats ~jobs ()
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Every table and figure, in paper order")
    Term.(const run $ repeats_arg $ fig_jobs_arg)

(* scaling *)
let scaling_cmd =
  let run machine bench jobs =
    Ws_harness.Exp_scaling.run ~machine ~bench ~jobs ()
  in
  let bench =
    Arg.(value & opt string "Fib" & info [ "bench"; "b" ] ~docv:"BENCH" ~doc:"Benchmark.")
  in
  Cmd.v
    (Cmd.info "scaling" ~doc:"Worker-count speedup curves (THE vs THEP)")
    Term.(const run $ machine_arg $ bench $ fig_jobs_arg)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Explore with N domains in parallel. Results are byte-identical \
           to the sequential search unless the run budget is exhausted or \
           $(b,--memo) is also set (verdicts agree in all cases).")

let memo_arg =
  Arg.(
    value & flag
    & info [ "memo" ]
        ~doc:
          "Memoize visited machine states, pruning interleavings that \
           converge to an already-explored state.")

let por_arg =
  Arg.(
    value & flag
    & info [ "por" ]
        ~doc:
          "Sleep-set partial-order reduction: skip interleavings that only \
           commute independent transitions of already-explored ones. \
           Verdicts and replayable failure prefixes are unchanged; the run \
           count typically drops by 5-100x.")

let dpor_arg =
  Arg.(
    value & flag
    & info [ "dpor" ]
        ~doc:
          "Source-DPOR (implies $(b,--por)): on top of sleep sets, track \
           races between executed transitions via their memory footprints \
           and backtrack only into interleavings that reverse an observed \
           race, instead of enumerating every non-sleeping sibling. \
           Verdicts and failure sets are unchanged; the run count and \
           (especially) the sleep-set skip work drop further.")

let memo_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "memo-file" ] ~docv:"PATH"
        ~doc:
          "Persistent visited-state store (implies $(b,--memo)): a \
           directory of fingerprint-sharded append-only entry files plus a \
           header pinning the scenario, bounds and reduction flags. A \
           missing PATH starts cold and is created on a completed search; \
           a PATH whose header does not match this run's configuration is \
           rejected. Warm reruns prune at every stored state and report \
           the stored failure set.")

let snapshots_arg =
  Arg.(
    value & opt bool true
    & info [ "snapshots" ] ~docv:"BOOL"
        ~doc:
          "Reach sibling branches by restoring machine snapshots instead of \
           replaying the schedule prefix from the root. Results are \
           byte-identical either way; $(b,--snapshots=false) is the replay \
           oracle the snapshot path is differentially tested against.")

(* classic x86-TSO litmus suite *)
let tso_litmus_cmd =
  let run jobs memo por dpor memo_file snapshots =
    print_endline
      "== Classic x86-TSO litmus tests against the abstract machine ==";
    let memo = memo || memo_file <> None in
    let results =
      try
        Ws_litmus.Classic.run_all ~jobs ~memo ~por ~dpor ?memo_dir:memo_file
          ~snapshots ()
      with Failure e ->
        (* keep stdout (the banner, any completed rows) ahead of the error
           even when both land in one pipe *)
        flush stdout;
        prerr_endline e;
        exit 2
    in
    List.iter (fun r -> Format.printf "%a@." Ws_litmus.Classic.pp_result r) results;
    (match memo_file with
    | Some dir ->
        let lookups, hits =
          List.fold_left
            (fun (l, h) (r : Ws_litmus.Classic.result) ->
              (l + r.memo_lookups, h + r.memo_hits))
            (0, 0) results
        in
        Printf.printf "memo store %s: %d lookups, %d hits (hit rate %.3f)\n"
          dir lookups hits
          (if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups)
    | None -> ());
    if List.exists (fun r -> not r.Ws_litmus.Classic.ok) results then exit 1
  in
  let memo_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "memo-file" ] ~docv:"PATH"
          ~doc:
            "Persistent visited-state store directory (implies \
             $(b,--memo)); each litmus test keeps its own store under \
             PATH, pinned to the test and this run's reduction flags. A \
             warm rerun prunes at every stored state; a mismatched or \
             corrupt store is rejected.")
  in
  Cmd.v
    (Cmd.info "tso-litmus"
       ~doc:"Validate the machine against the classic x86-TSO litmus tests")
    Term.(
      const run $ jobs_arg $ memo_arg $ por_arg $ dpor_arg $ memo_file
      $ snapshots_arg)

(* ablation *)
let ablation_cmd =
  let run machine jobs = Ws_harness.Exp_ablation.run ~machine ~jobs () in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Design-choice ablations: delta sweep, fence-cost sweep, THEP heartbeat placement")
    Term.(const run $ machine_arg $ fig_jobs_arg)

(* litmus: one cell of Fig. 8 *)
let litmus_cmd =
  let run l delta sb coalesce runs tasks seed =
    let bad = ref 0 in
    for r = 1 to runs do
      let o =
        Ws_litmus.Litmus_program.run ~tasks ~sb_capacity:sb ~coalesce ~l ~delta
          ~drain_weight:0.02 ~seed:(seed + r) ()
      in
      if not (Ws_litmus.Litmus_program.correct o) then incr bad
    done;
    Printf.printf
      "L=%d delta=%d sb=%d(+B) coalesce=%b: %d incorrect out of %d runs\n" l
      delta sb coalesce !bad runs;
    if !bad > 0 then exit 1
  in
  let l = Arg.(value & opt int 1 & info [ "l" ] ~docv:"L" ~doc:"Client stores between takes.") in
  let delta = Arg.(value & opt int 4 & info [ "delta"; "d" ] ~docv:"D" ~doc:"Thief's delta.") in
  let sb = Arg.(value & opt int 32 & info [ "sb" ] ~docv:"S" ~doc:"Store buffer entries.") in
  let coalesce = Arg.(value & flag & info [ "coalesce" ] ~doc:"Enable same-address coalescing in B.") in
  let runs = Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N" ~doc:"Number of runs.") in
  let tasks = Arg.(value & opt int 256 & info [ "tasks" ] ~docv:"N" ~doc:"Initial queue size.") in
  Cmd.v
    (Cmd.info "litmus" ~doc:"Run one (L, delta) cell of the Fig. 9 litmus test")
    Term.(const run $ l $ delta $ sb $ coalesce $ runs $ tasks $ seed_arg)

(* check: randomized safety testing through the runtime *)
let check_cmd =
  let run qname workers seeds sb delta =
    let cfg =
      {
        Ws_runtime.Engine.default_config with
        workers;
        queue = Ws_core.Registry.find qname;
        sb_capacity = sb;
        delta;
      }
    in
    let failures = ref 0 in
    let totals = Ws_runtime.Metrics.create workers in
    for seed = 1 to seeds do
      let wl =
        Ws_runtime.Workload.uniform ~name:"check" ~tasks:64 ~work:10 ()
      in
      let r = Ws_runtime.Engine.run_random { cfg with seed } wl in
      Ws_runtime.Metrics.merge ~into:totals r.Ws_runtime.Engine.metrics;
      let (module Q : Ws_core.Queue_intf.S) = Ws_core.Registry.find qname in
      let bad =
        r.Ws_runtime.Engine.outcome <> Tso.Sched.Quiescent
        || r.lost > 0
        || (r.duplicates > 0 && not Q.may_duplicate)
      in
      if bad then begin
        incr failures;
        Printf.printf "seed %d: outcome=%s lost=%d duplicates=%d\n" seed
          (match r.outcome with
          | Tso.Sched.Quiescent -> "quiescent"
          | Tso.Sched.Max_steps -> "max-steps"
          | Tso.Sched.Deadlock -> "deadlock")
          r.lost r.duplicates
      end
    done;
    Printf.printf "%s: %d failures in %d adversarial random runs\n" qname
      !failures seeds;
    Format.printf "aggregate: %a@." Ws_runtime.Metrics.pp totals;
    if !failures > 0 then exit 1
  in
  let workers = Arg.(value & opt int 3 & info [ "workers"; "w" ] ~docv:"N" ~doc:"Workers.") in
  let seeds = Arg.(value & opt int 50 & info [ "seeds" ] ~docv:"N" ~doc:"Random schedules to try.") in
  let sb = Arg.(value & opt int 4 & info [ "sb" ] ~docv:"S" ~doc:"Store buffer entries.") in
  let delta = Arg.(value & opt int 3 & info [ "delta"; "d" ] ~docv:"D" ~doc:"Delta for fence-free queues.") in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Randomized safety check of a queue under the runtime")
    Term.(const run $ queue_arg $ workers $ seeds $ sb $ delta)

(* delta: the §4 static analysis on the runtime's worker loop *)
let delta_cmd =
  let run machine client_stores =
    let g = Ws_core.Delta_analysis.worker_loop_cfg ~client_stores in
    let bound = machine.Ws_harness.Machine_config.reorder_bound in
    let x =
      Option.value ~default:0 (Ws_core.Delta_analysis.min_stores_between_takes g)
    in
    Printf.printf
      "machine %s: reorder bound S = %d\n\
       worker-loop CFG: min stores between takes x = %d\n\
       sound delta = ceil(S/(x+1)) = %d\n"
      machine.Ws_harness.Machine_config.name bound x
      (Ws_core.Delta_analysis.delta g ~bound)
  in
  let client_stores =
    Arg.(
      value & opt int 1
      & info [ "client-stores"; "x" ] ~docv:"N"
          ~doc:"Stores the client performs after each take.")
  in
  Cmd.v
    (Cmd.info "delta"
       ~doc:"Derive a sound delta from the worker loop's CFG (the §4 analysis)")
    Term.(const run $ machine_arg $ client_stores)

(* trace: watch one random schedule of a queue scenario *)
let trace_cmd =
  let run qname sb delta preloaded steals seed last =
    let spec =
      {
        Ws_harness.Scenarios.default_spec with
        queue = qname;
        sb_capacity = sb;
        delta;
        preloaded;
        steal_attempts = steals;
      }
    in
    let inst = Ws_harness.Scenarios.instance spec () in
    let trace = Tso.Trace.attach inst.Tso.Explore.machine in
    let rng = Random.State.make [| seed |] in
    (match
       Tso.Sched.run ~max_steps:100_000 inst.Tso.Explore.machine
         (Tso.Sched.weighted rng ~drain_weight:0.15)
     with
    | Tso.Sched.Quiescent -> ()
    | Tso.Sched.Max_steps -> print_endline "(truncated at 100k steps)"
    | Tso.Sched.Deadlock -> print_endline "DEADLOCK");
    print_string (Tso.Trace.render ?last trace);
    match inst.Tso.Explore.check () with
    | Ok () -> print_endline "run satisfied the safety check"
    | Error e ->
        Printf.printf "SAFETY VIOLATION: %s\n" e;
        exit 1
  in
  let sb = Arg.(value & opt int 3 & info [ "sb" ] ~docv:"S" ~doc:"Store buffer entries.") in
  let delta = Arg.(value & opt int 2 & info [ "delta"; "d" ] ~docv:"D" ~doc:"Delta.") in
  let preloaded = Arg.(value & opt int 3 & info [ "tasks" ] ~docv:"N" ~doc:"Preloaded tasks.") in
  let steals = Arg.(value & opt int 2 & info [ "steals" ] ~docv:"N" ~doc:"Thief attempts.") in
  let last =
    Arg.(value & opt (some int) None & info [ "last" ] ~docv:"N" ~doc:"Show only the last N events.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print the interleaving of one adversarial run of a queue scenario")
    Term.(const run $ queue_arg $ sb $ delta $ preloaded $ steals $ seed_arg $ last)

(* explore: bounded exhaustive model checking *)
let explore_cmd =
  let run qname sb delta preloaded steals client_stores max_runs pb fence jobs
      memo por dpor memo_file metrics snapshots progress forensics
      trace_failure =
    let spec =
      {
        Ws_harness.Scenarios.default_spec with
        queue = qname;
        sb_capacity = sb;
        delta;
        preloaded;
        steal_attempts = steals;
        client_stores;
        worker_fence = fence;
      }
    in
    let memo = memo || memo_file <> None in
    let memo_store =
      match memo_file with
      | None -> None
      | Some path -> (
          (* the header pins everything that shapes the reduced tree: the
             scenario itself plus bounds and reduction flags *)
          let config =
            "explore "
            ^ Telemetry.Json.to_string ~indent:false
                (Telemetry.Json.Obj (Ws_harness.Scenarios.spec_json spec))
          in
          match
            Tso.Memo_store.open_ ~path ~config
              ~max_depth:Tso.Explore.default_max_depth
              ~preemption_bound:(Some pb) ~por ~dpor ()
          with
          | Ok store -> Some store
          | Error e ->
              (* the store's own diagnostics already carry the path *)
              Printf.eprintf "memo store: %s\n" e;
              exit 2)
    in
    let sink = Telemetry.Sink.create () in
    let st, frontier, _clean =
      Ws_harness.Runner.exhaustive_check_full spec ~max_runs
        ~preemption_bound:(Some pb) ~jobs ~memo ~por ~dpor ?memo_store ~sink
        ~snapshots ~progress ()
    in
    Printf.printf
      "%s: %d complete runs, %d truncated, %d deadlocks, %d pruned branches%s%s%s, \
       peak depth %d\n"
      qname st.Tso.Explore.runs st.truncated st.deadlocks st.pruned
      (if memo then
         Printf.sprintf ", %d memo hits (%.1f%% hit rate)" st.memo_hits
           (100.0 *. Tso.Explore.memo_hit_rate st)
       else "")
      (if por || dpor then
         Printf.sprintf ", %d sleep-set skips" st.sleep_skips
       else "")
      (match memo_store with
      | Some store ->
          Printf.sprintf ", memo store %d/%d warm hits"
            (Tso.Memo_store.hits store)
            (Tso.Memo_store.lookups store)
      | None -> "")
      st.Tso.Explore.peak_depth;
    Option.iter
      (fun file ->
        let module J = Telemetry.Json in
        let doc =
          J.Obj
            [
              ("schema", J.Str "wsrepro-explore/v1");
              ("scenario", J.Obj (Ws_harness.Scenarios.spec_json spec));
              ( "bounds",
                J.Obj
                  [
                    ("max_runs", J.Int max_runs);
                    ("preemption_bound", J.Int pb);
                    ("jobs", J.Int jobs);
                    ("memo", J.Bool memo);
                    ("por", J.Bool (por || dpor));
                    ("dpor", J.Bool dpor);
                    ("snapshots", J.Bool snapshots);
                  ] );
              ( "stats",
                J.Obj
                  [
                    ("runs", J.Int st.Tso.Explore.runs);
                    ("truncated", J.Int st.truncated);
                    ("deadlocks", J.Int st.deadlocks);
                    ("pruned", J.Int st.pruned);
                    ("memo_hits", J.Int st.memo_hits);
                    ("sleep_skips", J.Int st.sleep_skips);
                    ("peak_depth", J.Int st.peak_depth);
                    ("failures", J.Int (List.length st.failures));
                  ] );
              ( "frontier",
                J.Obj
                  [
                    ("domains", J.Int frontier.Tso.Explore_par.fr_domains);
                    ("tasks", J.Int frontier.fr_tasks);
                    ("splits", J.Int frontier.fr_splits);
                    ("steals", J.Int frontier.fr_steals);
                    ("steal_attempts", J.Int frontier.fr_steal_attempts);
                    ( "runs_per_domain",
                      J.List
                        (Array.to_list
                           (Array.map (fun n -> J.Int n)
                              frontier.fr_runs_per_domain)) );
                    ( "tasks_per_domain",
                      J.List
                        (Array.to_list
                           (Array.map (fun n -> J.Int n)
                              frontier.fr_tasks_per_domain)) );
                  ] );
              ( "memo_store",
                match memo_store with
                | None -> J.Null
                | Some store ->
                    let lookups = Tso.Memo_store.lookups store in
                    let hits = Tso.Memo_store.hits store in
                    J.Obj
                      [
                        ("loaded_entries",
                         J.Int (Tso.Memo_store.loaded_entries store));
                        ("pending_entries",
                         J.Int (Tso.Memo_store.pending_entries store));
                        ("lookups", J.Int lookups);
                        ("hits", J.Int hits);
                        ( "hit_rate",
                          J.Float
                            (if lookups = 0 then 0.0
                             else float_of_int hits /. float_of_int lookups) );
                      ] );
              ("counters", Telemetry.Sink.to_json sink);
            ]
        in
        J.write_file file doc;
        Printf.printf "metrics: %s\n" file)
      metrics;
    match Tso.Explore.failures_in_replay_order st with
    | [] -> print_endline "no safety violation found"
    | (choices, msg) :: _ ->
        Printf.printf "VIOLATION: %s\nreplayable choice prefix: [%s]\n" msg
          (String.concat "; " (List.map string_of_int choices));
        (if forensics <> None || trace_failure then begin
           match
             Ws_harness.Runner.forensics_report spec ~progress ~choices
               ~message:msg ()
           with
           | Error e -> Printf.printf "forensics failed: %s\n" e
           | Ok report ->
               print_newline ();
               print_string (Forensics.Report.summary report);
               if trace_failure then begin
                 print_endline "minimized interleaving:";
                 print_string report.Forensics.Report.replay.Forensics.Witness.timeline
               end;
               Option.iter
                 (fun file ->
                   Forensics.Report.write report file;
                   Printf.printf "forensics report: %s\n" file)
                 forensics
         end
         else begin
           (* no forensics requested: show the raw failing interleaving *)
           let inst = Ws_harness.Scenarios.instance spec () in
           let trace = Tso.Trace.attach inst.Tso.Explore.machine in
           List.iter
             (fun i ->
               match Tso.Explore.next_choices inst.Tso.Explore.machine with
               | [] -> ()
               | ts ->
                   ignore
                     (Tso.Machine.apply inst.Tso.Explore.machine (List.nth ts i)))
             choices;
           print_newline ();
           print_endline "interleaving:";
           print_string (Tso.Trace.render trace)
         end);
        exit 1
  in
  let sb = Arg.(value & opt int 1 & info [ "sb" ] ~docv:"S" ~doc:"Store buffer entries.") in
  let delta = Arg.(value & opt int 2 & info [ "delta"; "d" ] ~docv:"D" ~doc:"Delta.") in
  let preloaded = Arg.(value & opt int 2 & info [ "tasks" ] ~docv:"N" ~doc:"Preloaded tasks.") in
  let steals = Arg.(value & opt int 1 & info [ "steals" ] ~docv:"N" ~doc:"Thief attempts.") in
  let client_stores =
    Arg.(
      value & opt int 1
      & info [ "client-stores" ] ~docv:"N"
          ~doc:
            "Client stores the worker issues after each take. Fewer stores \
             between takes raise the delta a given buffer capacity needs \
             (delta = ceil(S / (stores + 1))).")
  in
  let max_runs = Arg.(value & opt int 200_000 & info [ "max-runs" ] ~docv:"N" ~doc:"Run budget.") in
  let pb = Arg.(value & opt int 3 & info [ "preemptions" ] ~docv:"N" ~doc:"CHESS preemption bound.") in
  let fence =
    Arg.(
      value & opt bool true
      & info [ "fence" ] ~docv:"BOOL"
          ~doc:"Worker fence for the fenced baselines (set false to watch the checker catch the bug).")
  in
  let forensics_arg =
    Arg.(
      value
      & opt ~vopt:(Some "forensics.json") (some string) None
      & info [ "forensics" ] ~docv:"FILE"
          ~doc:
            "On a violation, minimize the failing schedule (ddmin), extract \
             reorder witnesses, and write a $(b,wsrepro-forensics/v1) JSON \
             report to FILE (default $(b,forensics.json)).")
  in
  let trace_failure_arg =
    Arg.(
      value & flag
      & info [ "trace-failure" ]
          ~doc:
            "On a violation, print the minimized failing interleaving \
             (implies the forensics pass; combine with $(b,--forensics) to \
             also save the report).")
  in
  let explore_metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a machine-readable $(b,wsrepro-explore/v1) JSON sidecar: \
             the scenario and bounds, explorer statistics, the \
             work-stealing frontier distribution (per-domain run/task \
             counts, steal counters), persistent memo-store counters when \
             $(b,--memo-file) is set, and the merged telemetry counters.")
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Bounded exhaustive model checking of a queue")
    Term.(
      const run $ queue_arg $ sb $ delta $ preloaded $ steals $ client_stores
      $ max_runs $ pb $ fence $ jobs_arg $ memo_arg $ por_arg $ dpor_arg
      $ memo_file_arg $ explore_metrics $ snapshots_arg $ progress_arg
      $ forensics_arg $ trace_failure_arg)

(* native: the pool on real silicon — sim-vs-native parity + service bench *)
let backend_conv =
  Arg.enum
    [
      ("cl", Ws_native.Pool.Chase_lev_deques);
      ("the", Ws_native.Pool.The_deques);
    ]

let policy_conv =
  Arg.enum
    [
      ("random", Ws_native.Pool.Random_victim);
      ("round-robin", Ws_native.Pool.Round_robin_victim);
    ]

(* Load a wsrepro-scenario/v1 file, with --seed (when given) overriding
   the scenario's own seed — the one knob that threads through every
   arrival and service draw, sim and native alike. *)
let load_scenario_or_die file seed_override =
  match Ws_harness.Scenarios.load_open_spec file with
  | Error e ->
      Printf.eprintf "%s\n" e;
      exit 1
  | Ok spec -> (
      match seed_override with
      | Some s -> { spec with Ws_harness.Scenarios.sc_seed = s }
      | None -> spec)

let seed_override_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "RNG seed; with $(b,--scenario) it overrides the scenario \
           file's seed (one seed drives every arrival and service draw, \
           sim and native).")

let native_cmd =
  let run machine domains backend policy steal_half smoke fib_n graph_nodes
      rate requests chain work serve_metrics flight scenario seed_opt =
    match scenario with
    | Some file ->
        let spec = load_scenario_or_die file seed_opt in
        (* exit nonzero when the replay violated the scenario's SLO *)
        if
          not
            (Ws_harness.Exp_native.run ~machine ?serve_metrics ~scenario:spec
               ())
        then exit 1
    | None ->
    let seed = Option.value seed_opt ~default:1 in
    (* smoke shrinks every knob so CI finishes in seconds *)
    let pick full small = if smoke then small else full in
    ignore
      (Ws_harness.Exp_native.run ~machine ?domains ~backend ~policy
         ~steal_half
         ~fib_n:(pick fib_n (min fib_n 16))
         ~graph_nodes:(pick graph_nodes (min graph_nodes 400))
         ~rate ~requests:(pick requests (min requests 200))
         ~chain ~work:(pick work (min work 500))
         ?serve_metrics ?flight_file:flight ~seed ())
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains (default: recommended_domain_count - 1).")
  in
  let backend =
    Arg.(
      value
      & opt backend_conv Ws_native.Pool.Chase_lev_deques
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:"Deque backend: $(b,cl) (Chase-Lev) or $(b,the) (THE).")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Ws_native.Pool.Random_victim
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Victim selection: $(b,random) or $(b,round-robin).")
  in
  let steal_half =
    Arg.(
      value & flag
      & info [ "steal-half" ]
          ~doc:
            "Thieves take up to half the victim's queue per steal (requires \
             $(b,--backend the)).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Shrink all sizes for a seconds-long CI smoke run.")
  in
  let fib_n =
    Arg.(value & opt int 24 & info [ "fib" ] ~docv:"N" ~doc:"Fib input.")
  in
  let graph_nodes =
    Arg.(
      value & opt int 2000
      & info [ "graph-nodes" ] ~docv:"N"
          ~doc:"Graph nodes (edges default to 4x).")
  in
  let rate =
    Arg.(
      value & opt float 5000.
      & info [ "rate" ] ~docv:"R" ~doc:"Poisson arrival rate, requests/s.")
  in
  let requests =
    Arg.(
      value & opt int 1000
      & info [ "requests" ] ~docv:"N" ~doc:"Service-bench requests.")
  in
  let chain =
    Arg.(
      value & opt int 4
      & info [ "chain" ] ~docv:"K" ~doc:"Dependent stages per request.")
  in
  let work =
    Arg.(
      value & opt int 2000
      & info [ "work" ] ~docv:"W" ~doc:"Spin iterations per stage.")
  in
  let serve_metrics =
    Arg.(
      value
      & opt (some int) None
      & info [ "serve-metrics" ] ~docv:"PORT"
          ~doc:
            "Serve live OpenMetrics scrapes of the service-bench pool on \
             http://127.0.0.1:PORT/metrics for the duration of the bench \
             (0 picks a free port; the endpoint is printed to stderr).")
  in
  let flight =
    Arg.(
      value
      & opt ~vopt:(Some "flight.json") (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Run the steal-forcing flight-recorder probe and write its \
             wsrepro-flight/v1 report to $(docv) (default flight.json), \
             plus a Chrome trace alongside.")
  in
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"FILE"
          ~doc:
            "Replay a wsrepro-scenario/v1 JSON file on the native pool \
             (replaces the fixed parity/service sections): same pre-drawn \
             arrival gaps and service demands the simulator replays, \
             ticks mapped to wall time via the scenario's tick_ns.")
  in
  Cmd.v
    (Cmd.info "native"
       ~doc:
         "Run the fib/graph workloads on the native OCaml 5 work-stealing \
          pool and cross-check against the simulator, then an open-system \
          Poisson service benchmark with sojourn-latency percentiles")
    Term.(
      const run $ machine_arg $ domains $ backend $ policy $ steal_half
      $ smoke $ fib_n $ graph_nodes $ rate $ requests $ chain $ work
      $ serve_metrics $ flight $ scenario $ seed_override_arg)

(* top: the service bench under a live per-slot dashboard *)
let top_cmd =
  let run domains backend policy steal_half rate requests chain work
      serve_metrics interval seed =
    Ws_harness.Exp_native.top ?domains ~backend ~policy ~steal_half ~rate
      ~requests ~chain ~work ?serve_metrics ~interval ~seed ()
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains (default: recommended_domain_count - 1).")
  in
  let backend =
    Arg.(
      value
      & opt backend_conv Ws_native.Pool.Chase_lev_deques
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:"Deque backend: $(b,cl) (Chase-Lev) or $(b,the) (THE).")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Ws_native.Pool.Random_victim
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Victim selection: $(b,random) or $(b,round-robin).")
  in
  let steal_half =
    Arg.(
      value & flag
      & info [ "steal-half" ]
          ~doc:"Batched steals (requires $(b,--backend the)).")
  in
  let rate =
    Arg.(
      value & opt float 2000.
      & info [ "rate" ] ~docv:"R" ~doc:"Poisson arrival rate, requests/s.")
  in
  let requests =
    Arg.(
      value & opt int 10_000
      & info [ "requests" ] ~docv:"N" ~doc:"Requests to serve before exit.")
  in
  let chain =
    Arg.(
      value & opt int 4
      & info [ "chain" ] ~docv:"K" ~doc:"Dependent stages per request.")
  in
  let work =
    Arg.(
      value & opt int 2000
      & info [ "work" ] ~docv:"W" ~doc:"Spin iterations per stage.")
  in
  let serve_metrics =
    Arg.(
      value
      & opt (some int) None
      & info [ "serve-metrics" ] ~docv:"PORT"
          ~doc:
            "Also serve OpenMetrics scrapes on \
             http://127.0.0.1:PORT/metrics while the dashboard runs.")
  in
  let interval =
    Arg.(
      value & opt float 0.25
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Dashboard refresh interval.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run the open-system service benchmark under a live, refreshing \
          per-slot dashboard (tasks run/stolen/injected, steal attempts \
          and aborts, parks, queue gauges) drawn on stderr; stdout gets \
          the final summary only")
    Term.(
      const run $ domains $ backend $ policy $ steal_half $ rate $ requests
      $ chain $ work $ serve_metrics $ interval $ seed_arg)

(* scenario: the heavy-traffic overload sweep over a scenario file *)
let scenario_cmd =
  let run file native jobs out seed_opt =
    let spec = load_scenario_or_die file seed_opt in
    if not (Ws_harness.Exp_overload.section ~native ~jobs ?out spec ()) then
      exit 1
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"wsrepro-scenario/v1 JSON file.")
  in
  let native =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:
            "Also replay each overload point on the native pool (one \
             point at a time) and add its tail latencies to the table.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Write the wsrepro-overload/v1 report (scenario, per-point \
             sim/native tails, merged queue counters) to $(docv).")
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:
         "Run a scenario's heavy-traffic overload sweep (1x/2x/4x offered \
          load) on the timing model — and natively with $(b,--native) — \
          reporting p50/p99/p999 sojourn, drops and peak queue depth per \
          point")
    Term.(
      const run $ file $ native $ fig_jobs_arg $ out $ seed_override_arg)

(* json-check: validate telemetry sidecars and traces without external tools *)
let json_check_cmd =
  let run file =
    match Telemetry.Json.parse_file file with
    | Ok j ->
        (* forensics reports get the full structural check, not just parsing *)
        (match Telemetry.Json.member "schema" j with
        | Some (Telemetry.Json.Str "wsrepro-forensics/v1") -> (
            match Forensics.Report.validate j with
            | Ok () -> ()
            | Error e ->
                Printf.printf "%s: INVALID: %s\n" file e;
                exit 1)
        | Some (Telemetry.Json.Str "wsrepro-flight/v1") -> (
            match Telemetry.Flight_recorder.validate j with
            | Ok () -> ()
            | Error e ->
                Printf.printf "%s: INVALID: %s\n" file e;
                exit 1)
        | Some (Telemetry.Json.Str "wsrepro-scenario/v1") -> (
            match Ws_harness.Scenarios.open_spec_of_json j with
            | Ok _ -> ()
            | Error e ->
                Printf.printf "%s: INVALID: %s\n" file e;
                exit 1)
        | Some (Telemetry.Json.Str "wsrepro-overload/v1") -> (
            match Ws_harness.Exp_overload.validate j with
            | Ok () -> ()
            | Error e ->
                Printf.printf "%s: INVALID: %s\n" file e;
                exit 1)
        | _ -> ());
        let schema =
          match Telemetry.Json.member "schema" j with
          | Some (Telemetry.Json.Str s) -> Printf.sprintf " (schema %s)" s
          | _ -> ""
        in
        Printf.printf "%s: valid JSON%s\n" file schema
    | Error e ->
        Printf.printf "%s: INVALID: %s\n" file e;
        exit 1
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"JSON file to validate.")
  in
  Cmd.v
    (Cmd.info "json-check"
       ~doc:
         "Parse a JSON file (e.g. a $(b,--metrics) sidecar or \
          $(b,--trace-json) trace) with the in-tree strict parser; exit 1 \
          if it is malformed")
    Term.(const run $ file)

let main =
  Cmd.group
    (Cmd.info "wsrepro" ~version:"1.0.0"
       ~doc:
         "Reproduction of 'Fence-Free Work Stealing on Bounded TSO \
          Processors' (ASPLOS 2014) on a simulated bounded-TSO machine")
    [
      fig1_cmd; fig7_cmd; fig8_cmd; fig10_cmd; fig11_cmd; table1_cmd; all_cmd;
      ablation_cmd; scaling_cmd; litmus_cmd; tso_litmus_cmd; check_cmd;
      explore_cmd; trace_cmd; delta_cmd; native_cmd; top_cmd; scenario_cmd;
      json_check_cmd;
    ]

let () = exit (Cmd.eval main)
